package daemon

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slate/internal/device"
	"slate/internal/engine"
	"slate/internal/kern"
	"slate/internal/policy"
	"slate/internal/run"
	"slate/internal/vtime"
	"slate/workloads"
)

// busyKernel returns a spec whose blocks do a little real work and count
// executions.
func busyKernel(name string, blocks int, counter *atomic.Int64, memHeavy bool) *kern.Spec {
	flops, bytes := 1e7, 1e4
	if memHeavy {
		flops, bytes = 1e4, 1e8 // classifies H_M at wall-clock speeds
	}
	return &kern.Spec{
		Name: name, Grid: kern.D1(blocks), BlockDim: kern.D1(64),
		FLOPsPerBlock: flops, InstrPerBlock: 1e4, L2BytesPerBlock: bytes,
		ComputeEff: 0.5,
		Exec: func(int) {
			counter.Add(1)
			s := 0.0
			for i := 0; i < 2000; i++ {
				s += float64(i)
			}
			_ = s
		},
	}
}

func TestExecutorProfilesThenRuns(t *testing.T) {
	x := NewExecutor(4)
	var n atomic.Int64
	spec := busyKernel("k", 100, &n, false)
	if err := x.Run(spec, 4); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("profiling run executed %d blocks, want 100", n.Load())
	}
	if _, ok := x.Profile("k"); !ok {
		t.Fatal("no profile recorded after first run")
	}
	if err := x.Run(spec, 4); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 200 {
		t.Fatalf("second run executed %d total, want 200", n.Load())
	}
}

func TestExecutorRejectsBodylessKernel(t *testing.T) {
	x := NewExecutor(4)
	spec := &kern.Spec{Name: "nobody", Grid: kern.D1(4), BlockDim: kern.D1(32), ComputeEff: 0.5}
	if err := x.Run(spec, 4); err == nil {
		t.Fatal("kernel without Exec accepted")
	}
}

func TestExecutorConcurrentClientsCompleteExactly(t *testing.T) {
	x := NewExecutor(4)
	var wg sync.WaitGroup
	counts := make([]atomic.Int64, 3)
	const blocks, reps = 400, 4
	for p := 0; p < 3; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			spec := busyKernel(string(rune('a'+p)), blocks, &counts[p], p%2 == 0)
			for r := 0; r < reps; r++ {
				if err := x.Run(spec, 4); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for p := range counts {
		if got := counts[p].Load(); got != blocks*reps {
			t.Fatalf("client %d executed %d blocks, want %d", p, got, blocks*reps)
		}
	}
	if x.RunningCount() != 0 {
		t.Fatal("executor leaked running tasks")
	}
}

// SimBackend: injection+compilation are one-time per kernel; communication
// recurs per launch.
func TestSimBackendOverheadAccounting(t *testing.T) {
	dev := device.TitanXp()
	clk := vtime.NewClock()
	b := NewSim(dev, clk, &engine.StaticModel{DefaultHit: 0, DefaultRunBytes: 1 << 20, SlateRunFactor: 1})

	spec := workloads.BS()
	first := b.LaunchOverheads(spec, 0)
	if first.InjectSec <= 0 {
		t.Fatal("first launch paid no injection cost")
	}
	second := b.LaunchOverheads(spec, 1)
	if second.InjectSec != 0 {
		t.Fatal("second launch re-paid injection; compile cache broken")
	}
	if first.CommSec <= 0 || second.CommSec != first.CommSec {
		t.Fatal("communication cost must recur identically per launch")
	}
	other := b.LaunchOverheads(workloads.GS(), 0)
	if other.InjectSec <= 0 {
		t.Fatal("distinct kernel should pay its own injection")
	}
}

func TestSimBackendRunsAppsThroughScheduler(t *testing.T) {
	dev := device.TitanXp()
	clk := vtime.NewClock()
	b := NewSim(dev, clk, engine.NewTraceModel(dev))
	bs, _ := workloads.ByCode("BS")
	rg, _ := workloads.ByCode("RG")
	// RG starts earlier (smaller setup/transfers); give it enough reps to
	// still be running when BS's first kernel arrives.
	jobs := []run.Job{{App: bs, Reps: 5}, {App: rg, Reps: 300}}
	rs, err := run.NewDriver(clk, b).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Launches == 0 || r.KernelSec <= 0 {
			t.Fatalf("app %s did not execute: %+v", r.Code, r)
		}
	}
	// The pair is complementary; a corun decision must have been made.
	corun := false
	for _, d := range b.Sched.Decisions() {
		if d.Action == "corun" {
			corun = true
		}
	}
	if !corun {
		t.Fatal("BS-RG never corun under the Slate scheduler")
	}
	// The profiler classified both kernels.
	if p, ok := b.Prof.Lookup("RG"); !ok || p.Class != policy.LC {
		t.Fatalf("RG profile missing or misclassified: %+v", p)
	}
}

// An iterative application (Gaussian elimination's shrinking kernel
// sequence) runs through the Slate pipeline alongside a looped partner:
// every step's kernels are profiled once, and the stream of heterogeneous
// launches neither wedges the scheduler nor starves the partner.
func TestSimBackendIterativeApplication(t *testing.T) {
	dev := device.TitanXp()
	clk := vtime.NewClock()
	b := NewSim(dev, clk, &engine.StaticModel{DefaultHit: 0.2, DefaultRunBytes: 1 << 20, SlateRunFactor: 1})

	seq := workloads.GaussianModelSequence(48)
	ge := &workloads.App{
		Code: "GE", FullName: "Gaussian elimination (iterative)",
		Kernel:     seq[0],
		InputBytes: 1 << 20, OutputBytes: 1 << 20, HostSetupSeconds: 0.01,
	}
	rg, _ := workloads.ByCode("RG")

	jobs := []run.Job{
		{App: ge, Reps: len(seq), KernelAt: func(rep int) *kern.Spec { return seq[rep] }},
		{App: rg, Reps: 40},
	}
	rs, err := run.NewDriver(clk, b).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Launches != len(seq) {
		t.Fatalf("iterative app launched %d of %d kernels", rs[0].Launches, len(seq))
	}
	if rs[1].Launches != 40 {
		t.Fatalf("partner launched %d of 40", rs[1].Launches)
	}
	// Every distinct kernel content was profiled exactly once: the profiler
	// is content-addressed, so sequence steps sharing geometry and work
	// reuse one measurement instead of re-measuring per step name.
	uniq := map[string]bool{}
	for _, s := range seq {
		uniq[s.Fingerprint()] = true
	}
	if got := b.Prof.Len(); got < len(uniq) {
		t.Fatalf("profiled %d kernel contents, want ≥%d", got, len(uniq))
	}
	if got := b.Prof.Len(); got > len(seq)+1 {
		t.Fatalf("profiled %d kernel contents, want ≤%d (sequence + partner)", got, len(seq)+1)
	}
}

// The executor's corun split biases toward the compute-heavy partner when
// a memory-heavy kernel shares the pool (the class-based rebalance).
func TestExecutorRebalanceBiasesByClass(t *testing.T) {
	x := NewExecutor(6)
	var nLow, nMem atomic.Int64
	low := busyKernel("low-int", 300, &nLow, false)
	memv := busyKernel("mem-heavy", 300, &nMem, true)
	// First runs profile solo.
	if err := x.Run(low, 4); err != nil {
		t.Fatal(err)
	}
	if err := x.Run(memv, 4); err != nil {
		t.Fatal(err)
	}
	if cls, ok := x.Profile("mem-heavy"); !ok || cls.String() != "H_M" {
		t.Fatalf("mem-heavy classified %v", cls)
	}
	// Corun: the compute-classified kernel runs first and the memory-heavy
	// kernel joins (Table I: H_C × H_M → corun); the decision log must
	// show an uneven split favoring the non-memory kernel. The launches
	// are staggered so arrival order is deterministic.
	heavy := func(name string, counter *atomic.Int64, memHeavy bool) *kern.Spec {
		spec := busyKernel(name, 4000, counter, memHeavy)
		spec.Exec = func(int) {
			counter.Add(1)
			s := 0.0
			for i := 0; i < 40000; i++ {
				s += float64(i)
			}
			_ = s
		}
		return spec
	}
	lowLong := heavy("low-int", &nLow, false)
	memLong := heavy("mem-heavy", &nMem, true)
	var wg sync.WaitGroup
	wg.Add(2)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		_ = x.Run(lowLong, 4)
	}()
	go func() {
		defer wg.Done()
		<-started
		time.Sleep(2 * time.Millisecond)
		_ = x.Run(memLong, 4)
	}()
	wg.Wait()
	// Budget 6 with one memory-heavy partner → 4/2 split.
	unEven := false
	for _, d := range x.Decisions {
		if strings.HasPrefix(d, "corun ") &&
			strings.Contains(d, "(4 workers)") && strings.Contains(d, "(2 workers)") {
			unEven = true
		}
	}
	if !unEven {
		t.Fatalf("no uneven corun split recorded; decisions: %v", x.Decisions)
	}
	if nLow.Load() != 4300 || nMem.Load() != 4300 {
		t.Fatalf("block counts %d/%d, want 4300/4300", nLow.Load(), nMem.Load())
	}
}

// Three-way sharing on the real executor: three L_C kernels run
// concurrently when MaxConcurrent permits, splitting the pool.
func TestExecutorThreeWay(t *testing.T) {
	x := NewExecutor(6)
	x.MaxConcurrent = 3
	var counts [3]atomic.Int64
	// Declared work small enough that wall-clock profiling lands in L_C
	// (L_C × L_C coruns pairwise).
	lightKernel := func(name string, counter *atomic.Int64) *kern.Spec {
		return &kern.Spec{
			Name: name, Grid: kern.D1(2000), BlockDim: kern.D1(64),
			FLOPsPerBlock: 10, InstrPerBlock: 10, L2BytesPerBlock: 10,
			ComputeEff: 0.5,
			Exec:       func(int) { counter.Add(1) },
		}
	}
	specs := make([]*kern.Spec, 3)
	for i := 0; i < 3; i++ {
		specs[i] = lightKernel(fmt.Sprintf("three-%d", i), &counts[i])
		// Profile each solo first.
		if err := x.Run(specs[i], 4); err != nil {
			t.Fatal(err)
		}
		if cls, ok := x.Profile(specs[i].Name); !ok || cls.String() != "L_C" {
			t.Fatalf("kernel %d classified %v, want L_C", i, cls)
		}
	}
	var wg sync.WaitGroup
	var peak atomic.Int64
	start := make(chan struct{})
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			spec := lightKernel(specs[i].Name, &counts[i])
			spec.Exec = func(int) {
				counts[i].Add(1)
				if n := int64(x.RunningCount()); n > peak.Load() {
					peak.Store(n)
				}
				s := 0.0
				for k := 0; k < 30000; k++ {
					s += float64(k)
				}
				_ = s
			}
			if err := x.Run(spec, 4); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	for i := range counts {
		if counts[i].Load() != 4000 { // 2000 profile + 2000 corun
			t.Fatalf("kernel %d executed %d blocks, want 4000", i, counts[i].Load())
		}
	}
	if peak.Load() < 3 {
		t.Fatalf("peak concurrency %d; three-way sharing never engaged", peak.Load())
	}
}
