package daemon_test

import (
	"errors"
	"testing"
	"time"

	"slate/internal/client"
	"slate/internal/daemon"
	"slate/internal/kern"
)

// gatedKernel blocks every Exec on the gate channel, holding the launch
// in-flight until the test releases it.
func gatedKernel(name string, gate <-chan struct{}) *kern.Spec {
	return &kern.Spec{
		Name: name, Grid: kern.D1(4), BlockDim: kern.D1(32),
		FLOPsPerBlock: 1e4, InstrPerBlock: 1e4, L2BytesPerBlock: 1e4,
		ComputeEff: 0.5,
		Exec:       func(int) { <-gate },
	}
}

func quickKernel(name string) *kern.Spec {
	return &kern.Spec{
		Name: name, Grid: kern.D1(4), BlockDim: kern.D1(32),
		FLOPsPerBlock: 1e4, InstrPerBlock: 1e4, L2BytesPerBlock: 1e4,
		ComputeEff: 0.5,
		Exec:       func(int) {},
	}
}

// waitFor polls a condition until it holds or two seconds pass (session
// teardown runs after the OpClose reply, so drained state is eventual).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// A session at its pending-launch bound gets ErrBackpressure; once the
// queue drains, launches are admitted again and the session ends clean.
func TestBackpressureRejectsFloodingSession(t *testing.T) {
	srv, dial := daemon.NewLocal(2)
	srv.MaxSessionPending = 2
	cli, err := client.Local(srv, dial, "flood")
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	if err := cli.Launch(gatedKernel("a", gate), 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.Launch(gatedKernel("b", gate), 1); err != nil {
		t.Fatal(err)
	}
	err = cli.Launch(gatedKernel("c", gate), 1)
	if !errors.Is(err, client.ErrBackpressure) {
		t.Fatalf("third launch err = %v, want ErrBackpressure", err)
	}
	close(gate)
	if err := cli.Synchronize(); err != nil {
		t.Fatal(err)
	}
	// Quota released: admitted again.
	if err := cli.Launch(quickKernel("d"), 1); err != nil {
		t.Fatalf("launch after drain: %v", err)
	}
	if err := cli.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rejected launch's spec deposit to be purged", func() bool {
		return srv.Specs.Len() == 0
	})
}

// A session over its device-memory quota gets ErrQuota; freeing restores
// headroom.
func TestQuotaBoundsSessionMemory(t *testing.T) {
	srv, dial := daemon.NewLocal(2)
	srv.MaxSessionBytes = 1 << 20
	cli, err := client.Local(srv, dial, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	b1, err := cli.Malloc(700 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Malloc(700 << 10); !errors.Is(err, client.ErrQuota) {
		t.Fatalf("over-quota malloc err = %v, want ErrQuota", err)
	}
	if err := cli.Free(b1); err != nil {
		t.Fatal(err)
	}
	b2, err := cli.Malloc(700 << 10)
	if err != nil {
		t.Fatalf("malloc after free: %v", err)
	}
	if err := cli.Free(b2); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
}

// With WithBackpressureRetry, a backpressured launch succeeds once the
// daemon's queue drains within the backoff budget.
func TestBackpressureRetryRecovers(t *testing.T) {
	srv, dial := daemon.NewLocal(2)
	srv.MaxSessionPending = 1
	cli, err := client.Local(srv, dial, "patient",
		client.WithBackpressureRetry(client.BackoffConfig{
			Attempts: 12, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 3,
		}))
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	if err := cli.Launch(gatedKernel("hold", gate), 1); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	// Immediately backpressured, then admitted once "hold" finishes.
	if err := cli.Launch(quickKernel("next"), 1); err != nil {
		t.Fatalf("retried launch failed: %v", err)
	}
	if err := cli.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
}

// Repeated exhausted retries open the circuit: launches fail fast with
// ErrCircuitOpen instead of hammering the saturated daemon.
func TestCircuitOpensAfterRepeatedRejections(t *testing.T) {
	srv, dial := daemon.NewLocal(2)
	srv.MaxSessionPending = 1
	cli, err := client.Local(srv, dial, "hammer",
		client.WithBackpressureRetry(client.BackoffConfig{
			Attempts: 1, BaseDelay: time.Millisecond, TripAfter: 2, Cooldown: 10 * time.Second, Seed: 3,
		}))
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	if err := cli.Launch(gatedKernel("hog", gate), 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := cli.Launch(quickKernel("x"), 1); !errors.Is(err, client.ErrBackpressure) {
			t.Fatalf("launch %d err = %v, want ErrBackpressure", i, err)
		}
	}
	// Circuit tripped: no round trip, fail fast.
	if err := cli.Launch(quickKernel("y"), 1); !errors.Is(err, client.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	close(gate)
	if err := cli.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
}

// Drain mode rejects new sessions and new work with ErrDraining, finishes
// in-flight launches, and returns with the daemon fully torn down.
func TestDrainRejectsNewWorkAndTerminates(t *testing.T) {
	srv, dial := daemon.NewLocal(2)
	cli, err := client.Local(srv, dial, "old-timer")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Malloc(4096); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	if err := cli.Launch(gatedKernel("inflight", gate), 1); err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(5 * time.Second) }()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New sessions are refused.
	if _, err := client.Local(srv, dial, "late"); !errors.Is(err, client.ErrDraining) {
		t.Fatalf("new session err = %v, want ErrDraining", err)
	}
	// New work on the old session is refused...
	if err := cli.Launch(quickKernel("denied"), 1); !errors.Is(err, client.ErrDraining) {
		t.Fatalf("launch err = %v, want ErrDraining", err)
	}
	if _, err := cli.Malloc(64); !errors.Is(err, client.ErrDraining) {
		t.Fatalf("malloc err = %v, want ErrDraining", err)
	}
	// ...but the in-flight launch finishes and the session winds down.
	close(gate)
	if err := cli.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := srv.Sessions(); n != 0 {
		t.Fatalf("sessions = %d after drain", n)
	}
	if srv.Registry.Len() != 0 || srv.Specs.Len() != 0 {
		t.Fatalf("leaked: %d buffers, %d specs", srv.Registry.Len(), srv.Specs.Len())
	}
}

// A client that never says goodbye is force-closed after the drain timeout;
// its session teardown still reclaims everything.
func TestDrainForceClosesStragglers(t *testing.T) {
	srv, dial := daemon.NewLocal(2)
	cli, err := client.Local(srv, dial, "straggler")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Malloc(2048); err != nil {
		t.Fatal(err)
	}
	if err := srv.Drain(50 * time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if srv.Sessions() != 0 || srv.Registry.Len() != 0 {
		t.Fatalf("straggler not torn down: %d sessions, %d buffers", srv.Sessions(), srv.Registry.Len())
	}
	// The straggler's next call observes the dead transport.
	if _, err := cli.Malloc(64); err == nil {
		t.Fatal("call on force-closed session succeeded")
	}
}

// A containment timeout is sticky for the session, like a panic.
func TestKernelTimeoutPoisonsSession(t *testing.T) {
	srv, dial := daemon.NewLocal(2)
	srv.Exec.MaxRunSeconds = 0.05
	cli, err := client.Local(srv, dial, "hog")
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Launch(slowKernel2("crawler", 400, 2*time.Millisecond), 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.Synchronize(); !errors.Is(err, client.ErrKernelTimeout) {
		t.Fatalf("sync err = %v, want ErrKernelTimeout", err)
	}
	if err := cli.Launch(quickKernel("after"), 1); !errors.Is(err, client.ErrKernelTimeout) {
		t.Fatalf("post-timeout launch err = %v, want sticky ErrKernelTimeout", err)
	}
	_ = cli.Close()
	waitFor(t, "session resources to be reclaimed", func() bool {
		return srv.Registry.Len() == 0 && srv.Specs.Len() == 0
	})
}

// slowKernel2 mirrors the internal test helper for the external package.
func slowKernel2(name string, blocks int, perBlock time.Duration) *kern.Spec {
	return &kern.Spec{
		Name: name, Grid: kern.D1(blocks), BlockDim: kern.D1(32),
		FLOPsPerBlock: 1e4, InstrPerBlock: 1e4, L2BytesPerBlock: 1e4,
		ComputeEff: 0.5,
		Exec:       func(int) { time.Sleep(perBlock) },
	}
}
