package daemon_test

import (
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"slate/internal/client"
	"slate/internal/daemon"
	"slate/internal/kern"
)

// The full network path: the daemon listening on a real Unix socket,
// remote-style clients dialing in — what cmd/slated runs in production.
func TestServeOverUnixSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "slate.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := daemon.NewServer(4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := srv.Serve(l); err != nil {
			t.Error(err)
		}
	}()

	for proc := 0; proc < 3; proc++ {
		conn, err := net.Dial("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		cli, err := client.New(conn, "remote-proc")
		if err != nil {
			t.Fatal(err)
		}
		buf, err := cli.Malloc(256)
		if err != nil {
			t.Fatal(err)
		}
		payload := []byte("over the wire")
		if err := cli.MemcpyH2D(buf, payload); err != nil {
			t.Fatal(err)
		}
		back := make([]byte, len(payload))
		if err := cli.MemcpyD2H(back, buf); err != nil {
			t.Fatal(err)
		}
		if string(back) != string(payload) {
			t.Fatalf("round trip = %q", back)
		}
		// The injection pipeline works across the socket.
		entries, err := cli.LaunchSource(
			`__global__ void k(float *x, int n) { int i = blockIdx.x; if (i < n) x[i] = 1.0f; }`,
			"k", kern.D1(8), kern.D1(64), 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			t.Fatal("no compiled entries over the socket")
		}
		if err := cli.Free(buf); err != nil {
			t.Fatal(err)
		}
		if err := cli.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Closing the listener ends Serve cleanly.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if srv.Registry.Len() != 0 {
		t.Fatalf("registry leaked %d buffers", srv.Registry.Len())
	}
}

// A client that vanishes mid-session must not leak its buffers: the
// session's cleanup path reclaims them.
func TestAbruptDisconnectReclaimsBuffers(t *testing.T) {
	srv, dial := daemon.NewLocal(2)
	conn := dial()
	cli, err := client.New(conn, "doomed", client.WithShared(srv.Registry, srv.Specs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Malloc(1024); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Malloc(2048); err != nil {
		t.Fatal(err)
	}
	if srv.Registry.Len() != 2 {
		t.Fatalf("registry = %d buffers", srv.Registry.Len())
	}
	// Kill the transport without OpClose.
	conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for srv.Registry.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("registry leaked %d buffers after abrupt disconnect", srv.Registry.Len())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
