package daemon_test

import (
	"strings"
	"testing"

	"slate/internal/daemon"
	"slate/internal/ipc"
)

func batchSrcItem(opID uint64, kernel string) ipc.BatchItem {
	return ipc.BatchItem{
		Src: true, OpID: opID, Kernel: kernel,
		Source:   "__global__ void " + kernel + "(float *x, int n) { int i = blockIdx.x; if (i < n) x[i] = 1.0f; }",
		GridX:    4, GridY: 1, BlockX: 32, BlockY: 1, TaskSize: 4,
	}
}

// A batched frame accepts every item with one ack; a raw re-send of the same
// frame under the same op IDs is answered entirely from the dedup window —
// every ack flagged Dup, no second execution.
func TestBatchAcceptAndRawResendDedup(t *testing.T) {
	srv, dial, _ := durableServer(t, t.TempDir(), 2)
	defer srv.CloseDurability()
	conn := ipc.NewConn(dial())
	defer conn.Close()
	if rep := call(t, conn, &ipc.Request{Op: ipc.OpHello, Proc: "batch", Seq: 1}); rep.Err != "" {
		t.Fatal(rep.Err)
	}
	batch := []ipc.BatchItem{batchSrcItem(1, "bk1"), batchSrcItem(2, "bk2"), batchSrcItem(3, "bk3")}
	rep := call(t, conn, &ipc.Request{Op: ipc.OpLaunchBatch, Batch: batch, Seq: 2})
	if rep.Err != "" {
		t.Fatalf("batch: %v", rep.Err)
	}
	if len(rep.Acks) != len(batch) {
		t.Fatalf("got %d acks for %d items", len(rep.Acks), len(batch))
	}
	for i, a := range rep.Acks {
		if a.Code != 0 || a.Dup {
			t.Fatalf("ack %d = %+v, want a fresh accept", i, a)
		}
		if a.OpID != batch[i].OpID {
			t.Fatalf("ack %d carries op %d, want %d (submission order)", i, a.OpID, batch[i].OpID)
		}
	}
	if rep := call(t, conn, &ipc.Request{Op: ipc.OpSynchronize, Stream: -1, Seq: 3}); rep.Err != "" {
		t.Fatalf("sync: %v", rep.Err)
	}

	// The same frame again — the lost-batch-ack retry.
	rep = call(t, conn, &ipc.Request{Op: ipc.OpLaunchBatch, Batch: batch, Seq: 4})
	if rep.Err != "" {
		t.Fatalf("re-sent batch: %v", rep.Err)
	}
	for i, a := range rep.Acks {
		if a.Code != 0 || !a.Dup {
			t.Fatalf("re-sent ack %d = %+v, want the stored ack with Dup", i, a)
		}
	}
	if srv.DedupHits() != len(batch) {
		t.Fatalf("DedupHits = %d, want %d", srv.DedupHits(), len(batch))
	}
	for _, k := range []string{"bk1", "bk2", "bk3"} {
		if got := srv.Exec.Runs("src:" + k); got != 1 {
			t.Fatalf("%s ran %d times, want exactly 1", k, got)
		}
	}
}

// Admission is whole-batch: a batch that does not fit under the session's
// pending quota is refused entirely with a typed backpressure code, and no
// item of it executes.
func TestBatchBackpressureRefusesWholeBatch(t *testing.T) {
	srv, dial := daemon.NewLocal(2)
	srv.MaxSessionPending = 2
	conn := ipc.NewConn(dial())
	defer conn.Close()
	if rep := call(t, conn, &ipc.Request{Op: ipc.OpHello, Proc: "bp", Seq: 1}); rep.Err != "" {
		t.Fatal(rep.Err)
	}
	batch := []ipc.BatchItem{
		batchSrcItem(1, "bp1"), batchSrcItem(2, "bp2"),
		batchSrcItem(3, "bp3"), batchSrcItem(4, "bp4"),
	}
	rep := call(t, conn, &ipc.Request{Op: ipc.OpLaunchBatch, Batch: batch, Seq: 2})
	if rep.Code != ipc.CodeBackpressure {
		t.Fatalf("oversized batch = code %d (%s), want CodeBackpressure", rep.Code, rep.Err)
	}
	if len(rep.Acks) != 0 {
		t.Fatalf("refused batch returned %d acks", len(rep.Acks))
	}
	if rep := call(t, conn, &ipc.Request{Op: ipc.OpSynchronize, Stream: -1, Seq: 3}); rep.Err != "" {
		t.Fatalf("sync: %v", rep.Err)
	}
	for _, k := range []string{"bp1", "bp2", "bp3", "bp4"} {
		if got := srv.Exec.Runs("src:" + k); got != 0 {
			t.Fatalf("%s ran %d times under a refused batch", k, got)
		}
	}
}

// Per-item verdicts: an item whose prepare fails (unknown kernel) is rejected
// in its own ack while the rest of the batch is accepted and runs.
func TestBatchPerItemRejectionDoesNotSinkBatch(t *testing.T) {
	srv, dial := daemon.NewLocal(2)
	conn := ipc.NewConn(dial())
	defer conn.Close()
	if rep := call(t, conn, &ipc.Request{Op: ipc.OpHello, Proc: "mixed", Seq: 1}); rep.Err != "" {
		t.Fatal(rep.Err)
	}
	bad := ipc.BatchItem{
		Src: true, OpID: 2, Kernel: "missing",
		Source: "__global__ void other(float *x, int n) {}",
		GridX:  4, GridY: 1, BlockX: 32, BlockY: 1, TaskSize: 4,
	}
	unstamped := batchSrcItem(0, "nostamp")
	batch := []ipc.BatchItem{batchSrcItem(1, "good"), bad, unstamped}
	rep := call(t, conn, &ipc.Request{Op: ipc.OpLaunchBatch, Batch: batch, Seq: 2})
	if rep.Err != "" {
		t.Fatalf("mixed batch: %v", rep.Err)
	}
	if a := rep.Acks[0]; a.Code != 0 {
		t.Fatalf("good item rejected: %+v", a)
	}
	if a := rep.Acks[1]; a.Code == 0 || !strings.Contains(a.Err, "missing") {
		t.Fatalf("bad item ack = %+v, want a per-item rejection naming the kernel", a)
	}
	if a := rep.Acks[2]; a.Code == 0 || !strings.Contains(a.Err, "op ID") {
		t.Fatalf("unstamped item ack = %+v, want the stamping rejection", a)
	}
	if rep := call(t, conn, &ipc.Request{Op: ipc.OpSynchronize, Stream: -1, Seq: 3}); rep.Err != "" {
		t.Fatalf("sync: %v", rep.Err)
	}
	if got := srv.Exec.Runs("src:good"); got != 1 {
		t.Fatalf("accepted item ran %d times, want 1", got)
	}
	for _, k := range []string{"missing", "other", "nostamp"} {
		if got := srv.Exec.Runs("src:" + k); got != 0 {
			t.Fatalf("rejected item %s ran %d times", k, got)
		}
	}
}

// Recovery replays group-committed accept records exactly like singly
// appended ones: a daemon restarted over a journal written by batched
// dispatch re-executes the accepted-incomplete items once each, and the
// resumed session dedups their re-sends.
func TestRecoveryReplaysBatchedRecords(t *testing.T) {
	dir := t.TempDir()
	srv1, dial1, _ := durableServer(t, dir, 2)
	conn := ipc.NewConn(dial1())
	hello := call(t, conn, &ipc.Request{Op: ipc.OpHello, Proc: "rb", Seq: 1})
	if hello.Err != "" {
		t.Fatal(hello.Err)
	}
	batch := []ipc.BatchItem{batchSrcItem(1, "rb1"), batchSrcItem(2, "rb2")}
	if rep := call(t, conn, &ipc.Request{Op: ipc.OpLaunchBatch, Batch: batch, Seq: 2}); rep.Err != "" {
		t.Fatalf("batch: %v", rep.Err)
	}
	// Vanish without a synchronize; session teardown drains the dispatch
	// loop, whose final flush group-commits the completions. The journal now
	// holds only batch-written records for these ops.
	conn.Close()
	waitIdle(t, srv1)
	if err := srv1.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	srv2, dial2, stats := durableServer(t, dir, 2)
	defer srv2.CloseDurability()
	if stats.Sessions != 1 || stats.DedupOps != 2 {
		t.Fatalf("recovered stats = %+v, want 1 session carrying 2 dedup ops", stats)
	}
	conn2 := ipc.NewConn(dial2())
	defer conn2.Close()
	res := call(t, conn2, &ipc.Request{Op: ipc.OpResume, SessionToken: hello.Token, Proc: "rb", Seq: 1})
	if res.Err != "" || !res.Recovered {
		t.Fatalf("resume = %+v, want Recovered", res)
	}
	// Re-send the batch under the original IDs: answered from the window.
	rep := call(t, conn2, &ipc.Request{Op: ipc.OpLaunchBatch, Batch: batch, Seq: 2})
	if rep.Err != "" {
		t.Fatalf("replayed batch: %v", rep.Err)
	}
	for i, a := range rep.Acks {
		if !a.Dup || a.Code != 0 {
			t.Fatalf("replayed ack %d = %+v, want stored accept with Dup", i, a)
		}
	}
	if rep := call(t, conn2, &ipc.Request{Op: ipc.OpSynchronize, Stream: -1, Seq: 3}); rep.Err != "" {
		t.Fatalf("sync: %v", rep.Err)
	}
	// Exactly once across both incarnations: the group-committed completions
	// were durable, so recovery replays nothing and the deduped re-sends
	// execute nothing — each kernel ran only in incarnation 1.
	if stats.Replayed != 0 {
		t.Fatalf("recovery re-executed %d completed launches", stats.Replayed)
	}
	for _, k := range []string{"rb1", "rb2"} {
		if got := srv2.Exec.Runs("src:" + k); got != 0 {
			t.Fatalf("%s: %d incarnation-2 runs of a completed launch", k, got)
		}
	}
}
