// Package daemon hosts the Slate server side. This file provides the
// simulation backend: the daemon's launch pipeline (client command channel
// → code injector → NVRTC compile cache → workload-aware scheduler) with
// every cost modeled on the virtual clock, used by the harness to
// regenerate Figs. 6 and 7. The real wire-protocol daemon lives alongside
// it in this package.
package daemon

import (
	"slate/internal/device"
	"slate/internal/engine"
	"slate/internal/kern"
	"slate/internal/profile"
	"slate/internal/run"
	"slate/internal/sched"
	"slate/internal/vtime"
)

// Costs models the Slate-specific overheads of Table V's "outside kernel
// execution" rows. Defaults reproduce Fig. 6's measured fractions: ~4% of
// application time on client-daemon communication and ~1.5% on injection
// plus runtime compilation.
type Costs struct {
	// CommandRTTSeconds is one named-pipe round trip between client and
	// daemon.
	CommandRTTSeconds float64
	// RTTsPerLaunch counts command-channel round trips per kernel launch
	// (launch, synchronize, status).
	RTTsPerLaunch int
	// InjectSeconds is the FLEX scan plus source rewrite of one kernel.
	InjectSeconds float64
	// CompileSeconds is one NVRTC compilation; the result is cached per
	// kernel, so it is paid once (§IV-B).
	CompileSeconds float64
}

// DefaultCosts returns the calibrated overhead constants.
func DefaultCosts() Costs {
	return Costs{
		CommandRTTSeconds: 15e-6,
		RTTsPerLaunch:     2,
		InjectSeconds:     0.05,
		CompileSeconds:    0.40,
	}
}

// SimBackend implements run.Backend with the full Slate pipeline.
type SimBackend struct {
	Dev   *device.Device
	Clock *vtime.Clock
	Eng   *engine.Engine
	Sched *sched.Scheduler
	Prof  *profile.Profiler
	Costs Costs
	// TaskSize is the SLATE_ITERS default handed to the scheduler.
	TaskSize int

	compiled map[string]bool
}

// NewSim builds the simulated Slate daemon on the shared clock with its own
// profiler.
func NewSim(dev *device.Device, clock *vtime.Clock, model engine.PerfModel) *SimBackend {
	return NewSimWith(dev, clock, model, profile.New(dev, model))
}

// NewSimWith builds the simulated daemon around a caller-owned profiler.
// Profiles are pure functions of (kernel content, device, model), so a
// profiler shared across many backends — as the parallel harness does
// across experiment cells — yields exactly the per-backend results while
// measuring each kernel once.
func NewSimWith(dev *device.Device, clock *vtime.Clock, model engine.PerfModel, prof *profile.Profiler) *SimBackend {
	eng := engine.New(dev, clock, model)
	return &SimBackend{
		Dev:      dev,
		Clock:    clock,
		Eng:      eng,
		Sched:    sched.New(dev, eng, prof),
		Prof:     prof,
		Costs:    DefaultCosts(),
		TaskSize: 10,
		compiled: map[string]bool{},
	}
}

// Name implements run.Backend.
func (b *SimBackend) Name() string { return "slate" }

// LaunchOverheads implements run.Backend: the launch API, the command
// round trips, and — for a kernel's first launch — injection plus NVRTC
// compilation (cached thereafter, §IV-B).
func (b *SimBackend) LaunchOverheads(spec *kern.Spec, rep int) run.Overheads {
	ov := run.Overheads{
		HostSec: b.Dev.KernelLaunchSeconds,
		CommSec: float64(b.Costs.RTTsPerLaunch) * b.Costs.CommandRTTSeconds,
	}
	if !b.compiled[spec.Name] {
		b.compiled[spec.Name] = true
		ov.InjectSec = b.Costs.InjectSeconds + b.Costs.CompileSeconds
	}
	return ov
}

// TransferSeconds implements run.Backend. Slate's shared-buffer data
// channel moves bulk data without an extra copy, so the cost is the same
// PCIe transfer CUDA pays (§IV-A1).
func (b *SimBackend) TransferSeconds(n int64) float64 { return b.Dev.PCIe.TransferSeconds(n) }

// Submit implements run.Backend by handing the kernel to the
// workload-aware scheduler.
func (b *SimBackend) Submit(spec *kern.Spec, done func(vtime.Time, engine.Metrics)) error {
	return b.Sched.Submit(spec, b.TaskSize, done)
}
