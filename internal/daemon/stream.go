package daemon

// streamTracker keeps the per-stream launch-ordering state for one session
// (§III: "a queue for each process and CUDA stream"): each stream's tail is
// the completion channel of its most recently enqueued launch, so the next
// launch on that stream chains behind it while different streams proceed
// concurrently. The map is bounded: retired (drained) tails are pruned
// least-recently-used first, so a client cycling through stream IDs cannot
// grow daemon memory without bound. It is confined to the session's
// ServeConn goroutine — no locking.
type streamTracker struct {
	closed chan struct{}
	max    int
	seq    uint64
	tails  map[int]*streamTail
}

type streamTail struct {
	ch   chan struct{}
	used uint64 // last-touch sequence, the LRU ordering key
}

func newStreamTracker(max int) *streamTracker {
	c := make(chan struct{})
	close(c)
	return &streamTracker{closed: c, max: max, tails: map[int]*streamTail{}}
}

// tailOf returns the stream's current tail: a channel that closes when its
// last enqueued launch finishes (already closed when the stream is idle).
func (st *streamTracker) tailOf(stream int) chan struct{} {
	if t, ok := st.tails[stream]; ok {
		st.seq++
		t.used = st.seq
		return t.ch
	}
	return st.closed
}

// push chains a new launch onto the stream: it returns the previous tail to
// wait on and the new tail the launch must close on completion.
func (st *streamTracker) push(stream int) (prev <-chan struct{}, next chan struct{}) {
	prev = st.tailOf(stream)
	next = make(chan struct{})
	st.seq++
	st.tails[stream] = &streamTail{ch: next, used: st.seq}
	st.prune()
	return prev, next
}

// prune evicts drained tails, least-recently-used first, until the map is
// back under its bound. Only drained tails are eligible — evicting a live
// tail would break intra-stream ordering — and when every tail is live the
// bound yields to correctness. (An earlier version pruned arbitrary drained
// victims in map-iteration order, so which streams kept their bookkeeping
// varied run to run; recently active streams could be dropped while cold
// retired ones pinned the map at its cap.)
func (st *streamTracker) prune() {
	for len(st.tails) > st.max {
		victim, victimUsed, found := 0, uint64(0), false
		for id, t := range st.tails {
			select {
			case <-t.ch:
			default:
				continue // live launch: not evictable
			}
			if !found || t.used < victimUsed {
				victim, victimUsed, found = id, t.used, true
			}
		}
		if !found {
			return
		}
		delete(st.tails, victim)
	}
}

// len reports the tracked stream count (for tests).
func (st *streamTracker) len() int { return len(st.tails) }
