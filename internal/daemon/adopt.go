// Session adoption: the failover half of the fleet design. When a fleet
// member dies, the supervisor fences it (Kill) and asks a healthy member to
// adopt the victim's durable state-dir. Adoption ships each session's whole
// journal segment — token, dedup watermark, window, poison and loss marks —
// into the adopter's own journal as one KindSessionAdopt record per session,
// then settles accepted-but-incomplete launches through the same
// exactly-once replay pass restart recovery uses. The client's resume token
// is the session's fleet-wide identity and survives the move unchanged; only
// the daemon-local session ID is re-minted.
package daemon

import (
	"errors"
	"fmt"
	"sort"

	"slate/internal/journal"
	"slate/internal/policy"
)

// AdoptStats summarizes one AdoptState call; the fleet supervisor logs it
// and uses Tokens to re-home its routing table.
type AdoptStats struct {
	// Sessions is how many resumable sessions were adopted.
	Sessions int
	// DedupOps is how many dedup-window entries moved with them.
	DedupOps int
	// Replayed is how many accepted-but-incomplete source launches the
	// adopter re-executed (exactly once, fleet-wide).
	Replayed int
	// Lost is how many accepted launches could not be re-executed
	// (in-process kernels whose closures died with the victim).
	Lost int
	// Conflicts is how many victim sessions were skipped because their token
	// already lives here (an earlier adoption of the same state-dir).
	Conflicts int
	// Profiles is how many warm kernel classifications travelled along.
	Profiles int
	// Tokens lists the adopted sessions' resume tokens, in adoption order.
	Tokens []uint64
}

// LogLine renders the one-line adoption summary the supervisor logs.
func (as *AdoptStats) LogLine() string {
	return fmt.Sprintf(
		"adopt: sessions=%d dedup-ops=%d replayed=%d lost=%d conflicts=%d profiles=%d",
		as.Sessions, as.DedupOps, as.Replayed, as.Lost, as.Conflicts, as.Profiles)
}

// AdoptState re-homes every resumable session found in a dead daemon's
// state-dir into this (durable, healthy) daemon. The caller must have fenced
// the victim first — Kill guarantees the victim journals nothing after the
// segment is read, which is what makes the re-executed launches exactly-once
// rather than at-least-once. Idempotent: adopting the same dir twice skips
// already-present tokens as conflicts.
func (s *Server) AdoptState(dir string) (*AdoptStats, error) {
	if s.durable == nil {
		return nil, errors.New("daemon: adoption requires durability (EnableDurability first)")
	}
	ls, _, _, err := loadDurableState(dir)
	if err != nil {
		return nil, err
	}
	stats := &AdoptStats{}
	// Warm profiles travel too; RestoreProfile keeps existing entries, so the
	// adopter's own measurements win on conflict.
	for name, p := range ls.profiles {
		s.Exec.RestoreProfile(name, policy.Class(p.Class), p.SoloSec)
		stats.Profiles++
	}
	// Deterministic adoption order: the victim's session IDs.
	victims := make([]*resumeState, 0, len(ls.sessions))
	for _, st := range ls.sessions {
		victims = append(victims, st)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].Sess < victims[j].Sess })

	var adopted []*resumeState
	for _, v := range victims {
		st, dup, err := s.adoptSession(v)
		if err != nil {
			return stats, err
		}
		if dup {
			stats.Conflicts++
			continue
		}
		stats.Sessions++
		stats.DedupOps += len(st.Window)
		stats.Tokens = append(stats.Tokens, st.Token)
		adopted = append(adopted, st)
	}
	// Settle re-homed in-flight work through the one exactly-once replay
	// path. Completions journal here, on the adopter.
	stats.Replayed, stats.Lost = s.replaySessions(adopted)
	return stats, nil
}

// adoptSession durably installs one victim session into this daemon under a
// fresh local session ID, keeping the resume token. It is the shared
// per-session half of AdoptState and planned migration. dup reports the
// token already lives here (idempotent re-adoption); the caller decides
// whether that is a conflict (failover) or fine (migration retry). The
// caller runs replaySessions afterwards to settle in-flight work.
func (s *Server) adoptSession(v *resumeState) (st *resumeState, dup bool, err error) {
	d := s.durable
	d.mu.Lock()
	_, dup = d.resume[v.Token]
	d.mu.Unlock()
	if dup {
		return nil, true, nil
	}
	// The token is the credential the client will Resume with and must
	// survive the move; the session ID is this daemon's namespace, so
	// mint a fresh one rather than collide with a local session.
	s.mu.Lock()
	s.nextSess++
	sess := s.nextSess
	s.mu.Unlock()
	rec := &journal.Record{
		Kind: journal.KindSessionAdopt, Sess: sess, Token: v.Token, Proc: v.Proc,
		MaxOp: v.MaxOp, Code: v.PoisonCode, Err: v.PoisonErr, Lost: v.LostErr,
	}
	for _, e := range v.Window {
		rec.AdoptOps = append(rec.AdoptOps, journal.AdoptedOp{
			OpID: e.OpID, Code: e.Code, Err: e.Err,
			Degraded: e.Degraded, Entries: e.Entries, Done: e.Done,
			Src: e.Src, Kernel: e.Kernel,
			GridX: e.GridX, GridY: e.GridY, BlockX: e.BlockX, BlockY: e.BlockY,
			TaskSize: e.TaskSize, Stream: e.Stream,
		})
	}
	st = &resumeState{
		Sess: sess, Token: v.Token, Proc: v.Proc, MaxOp: v.MaxOp,
		Window: v.Window, PoisonErr: v.PoisonErr, PoisonCode: v.PoisonCode,
		LostErr: v.LostErr,
	}
	if err := s.journalAppend(rec, func() {
		d.mu.Lock()
		d.resume[st.Token] = st
		d.bySess[st.Sess] = st
		d.mu.Unlock()
	}); err != nil {
		return nil, false, err
	}
	return st, false, nil
}
