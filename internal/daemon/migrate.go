// Planned session migration: the cooperative half of the fleet's re-homing
// machinery. Where adoption (adopt.go) rescues sessions from a *fenced,
// dead* member by reading its state-dir off disk, migration moves them off
// a *live, quiesced* member one durable step at a time:
//
//	1. the destination journals a KindSessionAdopt record (the adopted copy
//	   is durable on the destination FIRST), then
//	2. the source journals a KindSessionMigrate tombstone (the session is
//	   no longer recoverable here).
//
// That order is what makes every crash window safe. Die before step 1 and
// the session is intact on the source — failure-style fence-adopt recovers
// it. Die between the steps and the session is durable on BOTH members; the
// supervisor's fallback fence-adopts the source onto the SAME destination,
// where the token conflict is detected and the source's stale copy skipped,
// so the session still has exactly one home and exactly-once accounting.
// The reverse order would have a crash window that loses the session
// entirely.
//
// The caller must quiesce the source first (Server.Drain's polite phase):
// with every session detached and every accepted launch completed, the
// durable image is a consistent snapshot at a launch boundary.
package daemon

import (
	"errors"
	"fmt"
	"sort"

	"slate/internal/journal"
)

// MigrateStats summarizes one MigrateSessions call.
type MigrateStats struct {
	// Sessions is how many sessions were handed to the destination.
	Sessions int
	// DedupOps is how many dedup-window entries moved with them.
	DedupOps int
	// Conflicts is how many sessions were already present on the
	// destination (a retried migration after a mid-handoff crash); their
	// source copies are still tombstoned — the destination's copy wins.
	Conflicts int
	// Replayed is how many accepted-but-incomplete source launches the
	// destination re-executed (exactly once, fleet-wide).
	Replayed int
	// Lost is how many accepted launches could not be re-executed on the
	// destination (in-process kernels whose closures are not portable).
	Lost int
	// Profiles is how many warm kernel classifications travelled along.
	Profiles int
	// Tokens lists the migrated sessions' resume tokens, in migration order.
	Tokens []uint64
}

// LogLine renders the one-line migration summary the supervisor logs.
func (ms *MigrateStats) LogLine() string {
	return fmt.Sprintf(
		"migrate: sessions=%d dedup-ops=%d replayed=%d lost=%d conflicts=%d profiles=%d",
		ms.Sessions, ms.DedupOps, ms.Replayed, ms.Lost, ms.Conflicts, ms.Profiles)
}

// MigrateSessions cooperatively hands every resumable session on this
// (drained, durable) daemon to dst. Both daemons must be durable; the
// caller must have quiesced this one first (Drain), so sessions sit at a
// launch boundary with no attached transports. note, when non-nil, is
// called with each token as its handoff becomes durable on the destination
// — the fleet layer uses it for per-session lifecycle events.
//
// On error the migration stops mid-list: sessions already handed off live
// on dst (and are tombstoned here); the rest still live here, recoverable
// by a failure-style fence-adopt onto the same dst.
func (s *Server) MigrateSessions(dst *Server, note func(token uint64)) (*MigrateStats, error) {
	if s.durable == nil || dst == nil || dst.durable == nil {
		return nil, errors.New("daemon: migration requires durability on both ends (EnableDurability first)")
	}
	if dst == s {
		return nil, errors.New("daemon: cannot migrate sessions onto the same daemon")
	}
	stats := &MigrateStats{}

	// Warm profiles travel too; RestoreProfile keeps existing entries, so
	// the destination's own measurements win on conflict.
	for _, p := range s.Exec.Profiles() {
		dst.Exec.RestoreProfile(p.Name, p.Class, p.SoloSec)
		stats.Profiles++
	}

	// Deterministic handoff order: this daemon's session IDs. Snapshot
	// clones under the lock; the handoff itself journals on both ends and
	// must not hold it.
	d := s.durable
	d.mu.Lock()
	victims := make([]*resumeState, 0, len(d.resume))
	for _, st := range d.resume {
		victims = append(victims, st.clone())
	}
	d.mu.Unlock()
	sort.Slice(victims, func(i, j int) bool { return victims[i].Sess < victims[j].Sess })

	var adopted []*resumeState
	for _, v := range victims {
		// Step 1: durable on the destination. A crash before this leaves the
		// session here, untouched.
		st, dup, err := dst.adoptSession(v)
		if err != nil {
			return stats, fmt.Errorf("daemon: migrate handoff of session %x: %w", v.Token, err)
		}
		// Step 2: tombstone the source copy. Runs for conflicts too — a
		// conflict means an earlier (crashed) handoff already landed this
		// token on dst, and the stale source copy must still die.
		if err := s.journalAppend(&journal.Record{
			Kind: journal.KindSessionMigrate, Sess: v.Sess, Token: v.Token,
		}, func() {
			d.mu.Lock()
			if cur, ok := d.resume[v.Token]; ok {
				delete(d.resume, v.Token)
				delete(d.bySess, cur.Sess)
			}
			d.mu.Unlock()
		}); err != nil {
			return stats, fmt.Errorf("daemon: migrate tombstone of session %x: %w", v.Token, err)
		}
		if dup {
			stats.Conflicts++
			continue
		}
		stats.Sessions++
		stats.DedupOps += len(st.Window)
		stats.Tokens = append(stats.Tokens, st.Token)
		adopted = append(adopted, st)
		if note != nil {
			note(st.Token)
		}
	}
	// Settle re-homed in-flight work through the one exactly-once replay
	// path. Completions journal on the destination.
	stats.Replayed, stats.Lost = dst.replaySessions(adopted)
	return stats, nil
}

// ResumeTokens lists the resumable sessions currently homed on this daemon,
// sorted, so the fleet can enumerate what a migration will move. Volatile
// daemons have none.
func (s *Server) ResumeTokens() []uint64 {
	if s.durable == nil {
		return nil
	}
	d := s.durable
	d.mu.Lock()
	out := make([]uint64, 0, len(d.resume))
	for tok := range d.resume {
		out = append(out, tok)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
