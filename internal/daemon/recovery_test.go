package daemon_test

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"slate/internal/client"
	"slate/internal/daemon"
	"slate/internal/ipc"
	"slate/internal/kern"
)

// durableServer builds a durable daemon over dir with fsync disabled (the
// tests restart repeatedly).
func durableServer(t *testing.T, dir string, budget int) (*daemon.Server, func() net.Conn, *daemon.RecoveryStats) {
	t.Helper()
	srv, dial := daemon.NewLocal(budget)
	stats, err := srv.EnableDurability(daemon.Durability{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return srv, dial, stats
}

const recoverySrc = `__global__ void rk(float *x, int n) { int i = blockIdx.x; if (i < n) x[i] = 2.0f; }`

func sourceLaunch(opID uint64) *ipc.Request {
	return &ipc.Request{
		Op: ipc.OpLaunchSource, Source: recoverySrc, Kernel: "rk",
		GridX: 4, GridY: 1, BlockX: 32, BlockY: 1, TaskSize: 4, OpID: opID,
	}
}

// A durable hello mints a resume token; a volatile daemon does not.
func TestDurableHelloMintsToken(t *testing.T) {
	srv, dial, _ := durableServer(t, t.TempDir(), 2)
	defer srv.CloseDurability()
	conn := ipc.NewConn(dial())
	defer conn.Close()
	rep := call(t, conn, &ipc.Request{Op: ipc.OpHello, Proc: "tok", Seq: 1})
	if rep.Err != "" || rep.Token == 0 {
		t.Fatalf("durable hello = %+v, want a nonzero token", rep)
	}

	vol, vdial := daemon.NewLocal(2)
	_ = vol
	vconn := ipc.NewConn(vdial())
	defer vconn.Close()
	if rep := call(t, vconn, &ipc.Request{Op: ipc.OpHello, Proc: "tok", Seq: 1}); rep.Token != 0 {
		t.Fatalf("volatile hello minted token %x", rep.Token)
	}
}

// Restarting the daemon over the same state directory recovers the session:
// the token reattaches it, a replayed op answers from the dedup window with
// the original ack, and the recovery summary line reports it all.
func TestResumeRecoversSessionAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, dial1, _ := durableServer(t, dir, 2)
	conn := ipc.NewConn(dial1())
	hello := call(t, conn, &ipc.Request{Op: ipc.OpHello, Proc: "app", Seq: 1})
	if hello.Err != "" {
		t.Fatal(hello.Err)
	}
	launch := sourceLaunch(1)
	launch.Seq = 2
	first := call(t, conn, launch)
	if first.Err != "" {
		t.Fatalf("launch: %v", first.Err)
	}
	if rep := call(t, conn, &ipc.Request{Op: ipc.OpSynchronize, Stream: -1, Seq: 3}); rep.Err != "" {
		t.Fatalf("sync: %v", rep.Err)
	}
	conn.Close() // the client vanishes without OpClose
	waitIdle(t, srv1)
	if err := srv1.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	srv2, dial2, stats := durableServer(t, dir, 2)
	defer srv2.CloseDurability()
	if stats.Sessions != 1 || stats.DedupOps != 1 {
		t.Fatalf("recovered stats = %+v, want 1 session with 1 dedup op", stats)
	}
	line := stats.LogLine()
	if !strings.HasPrefix(line, "recovery: sessions=1 dedup-ops=1") {
		t.Fatalf("summary line = %q", line)
	}

	conn2 := ipc.NewConn(dial2())
	defer conn2.Close()
	res := call(t, conn2, &ipc.Request{Op: ipc.OpResume, SessionToken: hello.Token, Proc: "app", Seq: 1})
	if res.Err != "" || !res.Recovered {
		t.Fatalf("resume = %+v, want Recovered", res)
	}
	if res.Session != hello.Session || res.Token != hello.Token {
		t.Fatalf("resumed identity = (%d, %x), want (%d, %x)", res.Session, res.Token, hello.Session, hello.Token)
	}
	// The same op replayed: the original ack, flagged as a duplicate, and no
	// second execution.
	replay := sourceLaunch(1)
	replay.Seq = 2
	rep := call(t, conn2, replay)
	if rep.Err != "" || !rep.Dup {
		t.Fatalf("replayed op = %+v, want the stored ack with Dup", rep)
	}
	if got := srv2.Exec.Runs("src:rk"); got != 0 {
		t.Fatalf("replayed op executed %d times in the new incarnation", got)
	}
	if srv2.DedupHits() != 1 {
		t.Fatalf("DedupHits = %d, want 1", srv2.DedupHits())
	}
	// A fresh op on the resumed session still works.
	fresh := sourceLaunch(2)
	fresh.Seq = 3
	if rep := call(t, conn2, fresh); rep.Err != "" {
		t.Fatalf("fresh launch after resume: %v", rep.Err)
	}
	if rep := call(t, conn2, &ipc.Request{Op: ipc.OpSynchronize, Stream: -1, Seq: 4}); rep.Err != "" {
		t.Fatalf("sync after resume: %v", rep.Err)
	}
}

// An unknown token resumes into a fresh session: Recovered stays false (the
// "state lost, run degraded" verdict) but the client is fully operational.
func TestResumeUnknownTokenFallsBackFresh(t *testing.T) {
	srv, dial, _ := durableServer(t, t.TempDir(), 2)
	defer srv.CloseDurability()
	conn := ipc.NewConn(dial())
	defer conn.Close()
	rep := call(t, conn, &ipc.Request{Op: ipc.OpResume, SessionToken: 0xdeadbeef, Proc: "lost", Seq: 1})
	if rep.Err != "" {
		t.Fatal(rep.Err)
	}
	if rep.Recovered {
		t.Fatal("unknown token reported Recovered")
	}
	if rep.Session == 0 || rep.Token == 0 {
		t.Fatalf("fresh fallback session = %+v", rep)
	}
}

// An accepted source launch without a completion record is re-executed
// exactly once by recovery; an in-process launch in the same position is
// reported lost, surfacing at the resumed session's next Synchronize.
func TestRecoveryReplaysSourceAndMarksInProcessLost(t *testing.T) {
	dir := t.TempDir()
	srv1, dial1, _ := durableServer(t, dir, 2)
	nc := dial1()
	cli, err := client.New(nc, "lost-test", client.WithShared(srv1.Registry, srv1.Specs))
	if err != nil {
		t.Fatal(err)
	}
	token := cli.Token()

	// An in-process launch that blocks until released: its accept record is
	// durable, its completion never is (the journal closes first).
	gate := make(chan struct{})
	var once sync.Once
	spec := &kern.Spec{
		Name: "blocker", Grid: kern.D1(2), BlockDim: kern.D1(32),
		FLOPsPerBlock: 10, InstrPerBlock: 10, L2BytesPerBlock: 10, ComputeEff: 0.5,
		Exec: func(int) { <-gate },
	}
	if err := cli.Launch(spec, 1); err != nil {
		t.Fatal(err)
	}
	// Freeze durable state before the launch can complete, then release it.
	if err := srv1.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	once.Do(func() { close(gate) })
	nc.Close() // the client vanishes without OpClose
	waitIdle(t, srv1)

	srv2, dial2, stats := durableServer(t, dir, 2)
	defer srv2.CloseDurability()
	if stats.Lost != 1 || stats.Replayed != 0 {
		t.Fatalf("stats = %+v, want exactly one lost launch", stats)
	}
	conn := ipc.NewConn(dial2())
	defer conn.Close()
	res := call(t, conn, &ipc.Request{Op: ipc.OpResume, SessionToken: token, Seq: 1})
	if res.Err != "" || !res.Recovered {
		t.Fatalf("resume = %+v", res)
	}
	sync := call(t, conn, &ipc.Request{Op: ipc.OpSynchronize, Stream: -1, Seq: 2})
	if !strings.Contains(sync.Err, "lost in crash") {
		t.Fatalf("first sync after lost launch = %+v, want the loss surfaced", sync)
	}
	// The loss is surfaced once; the session then proceeds.
	if rep := call(t, conn, &ipc.Request{Op: ipc.OpSynchronize, Stream: -1, Seq: 3}); rep.Err != "" {
		t.Fatalf("second sync = %+v, want clean", rep)
	}
}

// A poisoned session (kernel panic) stays poisoned across a restart: the
// strike record persists and a resumed session fails launches sticky-style.
func TestPoisonSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, dial1, _ := durableServer(t, dir, 2)
	nc := dial1()
	cli, err := client.New(nc, "poisoned", client.WithShared(srv1.Registry, srv1.Specs))
	if err != nil {
		t.Fatal(err)
	}
	token := cli.Token()
	spec := &kern.Spec{
		Name: "panicker", Grid: kern.D1(2), BlockDim: kern.D1(32),
		FLOPsPerBlock: 10, InstrPerBlock: 10, L2BytesPerBlock: 10, ComputeEff: 0.5,
		Exec: func(glob int) {
			if glob == 0 {
				panic("recovery-test: injected panic")
			}
		},
	}
	if err := cli.Launch(spec, 1); err != nil {
		t.Fatal(err)
	}
	if err := cli.Synchronize(); !errors.Is(err, client.ErrKernelPanic) {
		t.Fatalf("sync after panic = %v, want ErrKernelPanic", err)
	}
	nc.Close() // abrupt vanish: detach, keep durable state
	waitIdle(t, srv1)
	if err := srv1.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	srv2, dial2, _ := durableServer(t, dir, 2)
	defer srv2.CloseDurability()
	conn := ipc.NewConn(dial2())
	defer conn.Close()
	res := call(t, conn, &ipc.Request{Op: ipc.OpResume, SessionToken: token, Seq: 1})
	if res.Err != "" || !res.Recovered {
		t.Fatalf("resume = %+v", res)
	}
	launch := sourceLaunch(5)
	launch.Seq = 2
	rep := call(t, conn, launch)
	if rep.Code != ipc.CodeKernelPanic {
		t.Fatalf("launch on resumed poisoned session = %+v, want CodeKernelPanic", rep)
	}
}

// Drain racing a mid-resume client: the resume gets a typed DRAINING
// refusal and its connection closes promptly — never a hang — and the
// drain itself terminates.
func TestDrainRacesResume(t *testing.T) {
	dir := t.TempDir()
	srv, dial, _ := durableServer(t, dir, 2)
	defer srv.CloseDurability()

	// Session A holds its connection open so the drain's polite phase is in
	// progress when the resume arrives.
	connA := ipc.NewConn(dial())
	defer connA.Close()
	if rep := call(t, connA, &ipc.Request{Op: ipc.OpHello, Proc: "holder", Seq: 1}); rep.Err != "" {
		t.Fatal(rep.Err)
	}

	// Session B establishes durable state, then vanishes — the resume
	// candidate.
	connB := ipc.NewConn(dial())
	helloB := call(t, connB, &ipc.Request{Op: ipc.OpHello, Proc: "resumer", Seq: 1})
	if helloB.Err != "" {
		t.Fatal(helloB.Err)
	}
	connB.Close()

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(500 * time.Millisecond) }()
	// Wait until drain mode is visibly on before racing the resume.
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	connR := ipc.NewConn(dial())
	defer connR.Close()
	if err := connR.SendRequest(&ipc.Request{Op: ipc.OpResume, SessionToken: helloB.Token, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	_ = connR.SetReadDeadline(time.Now().Add(2 * time.Second))
	rep, err := connR.RecvReply()
	if err != nil {
		t.Fatalf("resume during drain: %v (refusal must be typed, not a hang)", err)
	}
	if rep.Code != ipc.CodeDraining {
		t.Fatalf("resume during drain = %+v, want CodeDraining", rep)
	}
	// The refused conn must not linger holding the drain open: the daemon
	// closes it after the refusal.
	_ = connR.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := connR.RecvReply(); err == nil {
		t.Fatal("refused resume conn stayed open")
	}

	select {
	case <-drainDone:
		// Force-close of the holder after the timeout is fine; the point is
		// termination.
	case <-time.After(5 * time.Second):
		t.Fatal("drain hung while racing a resume")
	}
}

// waitIdle polls the server's session count to zero.
// The record whose append crosses CompactEvery must keep its effect through
// the compaction it triggers. Here the launch-complete record is exactly the
// boundary record (open + accept + profile + complete = 4 = CompactEvery): if
// compaction snapshotted before the completion was installed, the checkpoint
// would carry the op as accepted-but-incomplete and a restart would execute
// the acked launch a second time.
func TestCompactionBoundaryKeepsCompletion(t *testing.T) {
	dir := t.TempDir()
	srv1, dial1 := daemon.NewLocal(2)
	if _, err := srv1.EnableDurability(daemon.Durability{Dir: dir, NoSync: true, CompactEvery: 4}); err != nil {
		t.Fatal(err)
	}
	conn := ipc.NewConn(dial1())
	hello := call(t, conn, &ipc.Request{Op: ipc.OpHello, Proc: "edge", Seq: 1})
	if hello.Err != "" {
		t.Fatal(hello.Err)
	}
	launch := sourceLaunch(1)
	launch.Seq = 2
	if rep := call(t, conn, launch); rep.Err != "" {
		t.Fatalf("launch: %v", rep.Err)
	}
	if rep := call(t, conn, &ipc.Request{Op: ipc.OpSynchronize, Stream: -1, Seq: 3}); rep.Err != "" {
		t.Fatalf("sync: %v", rep.Err)
	}
	conn.Close()
	waitIdle(t, srv1)
	if err := srv1.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	srv2, dial2 := daemon.NewLocal(2)
	stats, err := srv2.EnableDurability(daemon.Durability{Dir: dir, NoSync: true, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.CloseDurability()
	if stats.Replayed != 0 || stats.Lost != 0 {
		t.Fatalf("recovery replayed=%d lost=%d, want 0/0: the completed launch must not run again", stats.Replayed, stats.Lost)
	}
	if got := srv2.Exec.Runs("src:rk"); got != 0 {
		t.Fatalf("completed launch executed %d more times after restart", got)
	}
	// The original ack is still answerable from the recovered dedup window.
	conn2 := ipc.NewConn(dial2())
	defer conn2.Close()
	res := call(t, conn2, &ipc.Request{Op: ipc.OpResume, SessionToken: hello.Token, Proc: "edge", Seq: 1})
	if res.Err != "" || !res.Recovered {
		t.Fatalf("resume = %+v, want Recovered", res)
	}
	replay := sourceLaunch(1)
	replay.Seq = 2
	if rep := call(t, conn2, replay); rep.Err != "" || !rep.Dup {
		t.Fatalf("replayed op = %+v, want the stored ack with Dup", rep)
	}
}

func waitIdle(t *testing.T, srv *daemon.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Sessions() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.Sessions() != 0 {
		t.Fatalf("sessions never drained: %d live", srv.Sessions())
	}
}
