// Crash recovery for the wire-protocol daemon: a write-ahead journal of
// session and launch state, periodic compaction into a checkpoint, and the
// recovery path that rebuilds resumable sessions after a restart.
//
// Durable state machine (DESIGN.md §11):
//
//	hello        → journal session-open (token minted, pre-ack)
//	launch       → journal launch-accept (pre-ack, with the ack's contents
//	               and — for source launches — the geometry recovery needs
//	               to re-execute it)
//	launch done  → journal launch-complete (+ a strike record when the
//	               outcome poisons the session)
//	profile      → journal the executor's first-run classification
//	close        → journal session-close (resumable state discarded)
//
// Recovery loads the checkpoint, replays the journal idempotently over it
// (records carry session/op identities; re-delivered identities are no-ops,
// which a crash between checkpoint rename and journal reset depends on),
// re-executes accepted-but-incomplete source launches exactly once, and
// marks non-replayable in-process launches lost. A reconnecting client
// presents its session token via OpResume and gets its dedup window,
// poison state, and pending outcomes back.
package daemon

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"slate/internal/fault"
	"slate/internal/ipc"
	"slate/internal/journal"
	"slate/internal/policy"
)

// Default durable-state filenames inside Durability.Dir.
const (
	// JournalFile is the append-only write-ahead log.
	JournalFile = "journal.slate"
	// CheckpointFile is the compacted snapshot the journal folds into.
	CheckpointFile = "checkpoint.slate"
)

// DedupWindow bounds each session's journaled replay window: the daemon
// remembers the accept-time ack of this many most-recent ops per session. A
// replayed op still inside the window returns its original reply verbatim
// (Dup set); an older one gets CodeDuplicateOp — it was accepted once and
// will not run again, but its outcome is no longer recallable.
const DedupWindow = 128

// DefaultCompactEvery is how many journal records accumulate before the
// daemon folds them into the checkpoint and resets the log.
const DefaultCompactEvery = 256

// Durability configures the daemon's crash-safe state layer.
type Durability struct {
	// Dir holds the journal and checkpoint files.
	Dir string
	// CompactEvery overrides DefaultCompactEvery (0 = default).
	CompactEvery int
	// Crash is the crash-site hook (fault.Crasher.Hook) for kill-and-restart
	// testing; nil never fires.
	Crash func(site string) error
	// NoSync skips per-append fsync (tests only).
	NoSync bool
}

// dedupEntry is one journaled launch in a session's replay window: the
// accept-time ack a re-sending client gets back, plus the geometry recovery
// needs to re-execute a source launch.
type dedupEntry struct {
	OpID uint64 `json:"op"`
	// Accept-time ack, replayed verbatim on a duplicate send.
	Code     uint8    `json:"code,omitempty"`
	Err      string   `json:"err,omitempty"`
	Degraded bool     `json:"deg,omitempty"`
	Entries  []string `json:"entries,omitempty"`
	// Done marks the launch's completion record as journaled; recovery
	// re-executes only accepted-incomplete launches.
	Done bool `json:"done,omitempty"`
	// Replay material (source launches).
	Src      bool   `json:"src,omitempty"`
	Kernel   string `json:"kernel,omitempty"`
	GridX    int    `json:"gx,omitempty"`
	GridY    int    `json:"gy,omitempty"`
	BlockX   int    `json:"bx,omitempty"`
	BlockY   int    `json:"by,omitempty"`
	TaskSize int    `json:"task,omitempty"`
	Stream   int    `json:"stream,omitempty"`
}

// resumeState is one session's durable, resumable identity: what survives a
// daemon restart and reattaches on OpResume. Exported fields persist in the
// checkpoint.
type resumeState struct {
	Sess  uint64 `json:"sess"`
	Token uint64 `json:"tok"`
	Proc  string `json:"proc,omitempty"`
	// MaxOp is the highest accepted op ID; anything at or below it is a
	// duplicate.
	MaxOp uint64 `json:"max_op,omitempty"`
	// Window is the bounded dedup FIFO, oldest first.
	Window []*dedupEntry `json:"window,omitempty"`
	// PoisonErr/PoisonCode persist sticky session poisoning (kernel panic or
	// containment timeout) across a restart.
	PoisonErr  string `json:"poison,omitempty"`
	PoisonCode uint8  `json:"poison_code,omitempty"`
	// LostErr reports accepted launches recovery could not re-execute
	// (in-process kernels whose closures died with the daemon); surfaced at
	// the resumed session's next Synchronize.
	LostErr string `json:"lost,omitempty"`

	attached bool // bound to a live connection (runtime only)
}

// entry returns the window entry for op, if still present.
func (st *resumeState) entry(op uint64) *dedupEntry {
	for _, e := range st.Window {
		if e.OpID == op {
			return e
		}
	}
	return nil
}

// clone deep-copies the entry so a checkpoint snapshot can be marshaled
// outside the daemon's locks.
func (e *dedupEntry) clone() *dedupEntry {
	cp := *e
	cp.Entries = append([]string(nil), e.Entries...)
	return &cp
}

// clone deep-copies the session's resumable state (window entries included)
// for the same reason.
func (st *resumeState) clone() *resumeState {
	cp := *st
	cp.Window = make([]*dedupEntry, len(st.Window))
	for i, e := range st.Window {
		cp.Window[i] = e.clone()
	}
	return &cp
}

// push appends a window entry, evicting the oldest beyond DedupWindow.
func (st *resumeState) push(e *dedupEntry) {
	st.Window = append(st.Window, e)
	if n := len(st.Window) - DedupWindow; n > 0 {
		st.Window = append([]*dedupEntry(nil), st.Window[n:]...)
	}
	if e.OpID > st.MaxOp {
		st.MaxOp = e.OpID
	}
}

// profileSnap is one journaled executor classification.
type profileSnap struct {
	Class   int     `json:"class"`
	SoloSec float64 `json:"solo_sec"`
}

// checkpointState is the compaction snapshot the journal folds into.
type checkpointState struct {
	NextSess uint64                 `json:"next_sess"`
	Sessions []*resumeState         `json:"sessions,omitempty"`
	Profiles map[string]profileSnap `json:"profiles,omitempty"`
}

// durableState is the daemon's runtime handle on its crash-safe layer.
type durableState struct {
	// compactMu serializes journal appends (plus the in-memory effect each
	// record describes) against compaction. Holding it across the whole
	// append+apply pair and across the whole snapshot+checkpoint+reset
	// sequence guarantees two invariants the checkpoint depends on: every
	// record counted by the journal has its effect visible when the snapshot
	// is taken, and no record lands between the snapshot and the journal
	// reset (where it would be silently erased). Ordering: compactMu is
	// acquired before mu, s.mu, and s.Exec.mu, never the reverse.
	compactMu sync.Mutex

	mu           sync.Mutex
	w            *journal.Writer
	jPath        string
	ckptPath     string
	compactEvery int
	crash        func(site string) error
	nosync       bool
	resume       map[uint64]*resumeState // token → state
	bySess       map[uint64]*resumeState
	dedupHits    int
	stats        RecoveryStats
}

// RecoveryStats summarizes what EnableDurability found and rebuilt; slated
// logs its LogLine at startup so operators can audit a restart.
type RecoveryStats struct {
	JournalPath      string
	CheckpointPath   string
	CheckpointLoaded bool
	// Sessions is how many resumable sessions were recovered.
	Sessions int
	// DedupOps is how many dedup-window entries (journaled launch acks) were
	// restored.
	DedupOps int
	// Profiles is how many warm first-run classifications were restored.
	Profiles int
	// Replayed is how many accepted-but-incomplete source launches recovery
	// re-executed (exactly once).
	Replayed int
	// Lost is how many accepted launches could not be re-executed
	// (in-process kernels); their sessions see a typed loss error.
	Lost int
	// Records is how many whole journal records replay applied.
	Records int
	// TruncatedBytes is the torn tail replay cut from the journal.
	TruncatedBytes int64
}

// LogLine renders the one-line recovery summary slated prints (and tests
// assert).
func (rs *RecoveryStats) LogLine() string {
	return fmt.Sprintf(
		"recovery: sessions=%d dedup-ops=%d profiles=%d replayed=%d lost=%d journal-records=%d truncated-bytes=%d",
		rs.Sessions, rs.DedupOps, rs.Profiles, rs.Replayed, rs.Lost, rs.Records, rs.TruncatedBytes)
}

// loadedState is the pure result of checkpoint + journal replay, before it
// is installed into a server.
type loadedState struct {
	nextSess uint64
	sessions map[uint64]*resumeState // token → state
	bySess   map[uint64]*resumeState
	profiles map[string]profileSnap
}

func newLoadedState() *loadedState {
	return &loadedState{
		sessions: map[uint64]*resumeState{},
		bySess:   map[uint64]*resumeState{},
		profiles: map[string]profileSnap{},
	}
}

// seed installs a checkpoint snapshot as the replay baseline.
func (ls *loadedState) seed(ck *checkpointState) {
	ls.nextSess = ck.NextSess
	for _, st := range ck.Sessions {
		ls.sessions[st.Token] = st
		ls.bySess[st.Sess] = st
	}
	for k, v := range ck.Profiles {
		ls.profiles[k] = v
	}
}

// apply folds one journal record into the state. Idempotent by identity:
// re-delivered records (the checkpoint-rename-then-crash case) are no-ops.
func (ls *loadedState) apply(rec *journal.Record) error {
	switch rec.Kind {
	case journal.KindSessionOpen:
		if _, ok := ls.sessions[rec.Token]; ok {
			return nil
		}
		st := &resumeState{Sess: rec.Sess, Token: rec.Token, Proc: rec.Proc}
		ls.sessions[rec.Token] = st
		ls.bySess[rec.Sess] = st
		if rec.Sess >= ls.nextSess {
			ls.nextSess = rec.Sess + 1
		}
	case journal.KindSessionClose:
		if st, ok := ls.bySess[rec.Sess]; ok {
			delete(ls.sessions, st.Token)
			delete(ls.bySess, rec.Sess)
		}
	case journal.KindLaunchAccept:
		st, ok := ls.bySess[rec.Sess]
		if !ok || rec.OpID == 0 || rec.OpID <= st.MaxOp {
			return nil // closed session, unstamped op, or re-delivery
		}
		st.push(&dedupEntry{
			OpID: rec.OpID, Code: rec.Code, Err: rec.Err,
			Degraded: rec.Degraded, Entries: rec.Entries,
			Src: rec.Src, Kernel: rec.Kernel,
			GridX: rec.GridX, GridY: rec.GridY, BlockX: rec.BlockX, BlockY: rec.BlockY,
			TaskSize: rec.TaskSize, Stream: rec.Stream,
		})
	case journal.KindLaunchComplete:
		if st, ok := ls.bySess[rec.Sess]; ok {
			if e := st.entry(rec.OpID); e != nil {
				e.Done = true
			}
		}
	case journal.KindStrike:
		if st, ok := ls.bySess[rec.Sess]; ok && rec.Action == "poison" {
			st.PoisonErr, st.PoisonCode = rec.Err, rec.Code
		}
	case journal.KindProfile:
		ls.profiles[rec.Kernel] = profileSnap{Class: rec.Class, SoloSec: rec.SoloSec}
	case journal.KindSessionAdopt:
		// A session re-homed from a dead fleet member: the record carries the
		// whole durable segment. Idempotent by token (the session's fleet-wide
		// identity), like every other record.
		if _, ok := ls.sessions[rec.Token]; ok {
			return nil
		}
		st := &resumeState{
			Sess: rec.Sess, Token: rec.Token, Proc: rec.Proc,
			PoisonErr: rec.Err, PoisonCode: rec.Code, LostErr: rec.Lost,
		}
		for _, a := range rec.AdoptOps {
			st.push(&dedupEntry{
				OpID: a.OpID, Code: a.Code, Err: a.Err,
				Degraded: a.Degraded, Entries: a.Entries, Done: a.Done,
				Src: a.Src, Kernel: a.Kernel,
				GridX: a.GridX, GridY: a.GridY, BlockX: a.BlockX, BlockY: a.BlockY,
				TaskSize: a.TaskSize, Stream: a.Stream,
			})
		}
		// The explicit watermark wins over what the (possibly trimmed) window
		// implies: ops that aged out of the window must stay duplicates.
		if rec.MaxOp > st.MaxOp {
			st.MaxOp = rec.MaxOp
		}
		ls.sessions[rec.Token] = st
		ls.bySess[rec.Sess] = st
		if rec.Sess >= ls.nextSess {
			ls.nextSess = rec.Sess + 1
		}
	case journal.KindSessionMigrate:
		// Planned migration source tombstone: the destination made its adopted
		// copy durable before this record was written, so the session is
		// simply no longer ours. Idempotent like a close.
		if st, ok := ls.sessions[rec.Token]; ok {
			delete(ls.sessions, rec.Token)
			delete(ls.bySess, st.Sess)
		}
	}
	return nil
}

// loadDurableState reads checkpoint + journal from dir and replays into a
// fresh state. Torn tails are truncated (reported in stats, not errors).
func loadDurableState(dir string) (*loadedState, journal.ReplayStats, bool, error) {
	ls := newLoadedState()
	var ck checkpointState
	ckLoaded, err := journal.ReadCheckpoint(filepath.Join(dir, CheckpointFile), &ck)
	if err != nil {
		return nil, journal.ReplayStats{}, false, err
	}
	if ckLoaded {
		ls.seed(&ck)
	}
	stats, err := journal.Replay(filepath.Join(dir, JournalFile), ls.apply)
	if err != nil {
		return nil, stats, ckLoaded, err
	}
	return ls, stats, ckLoaded, nil
}

// StateDigest deterministically fingerprints the durable state at dir —
// sessions, dedup windows, poison marks, and profiles — without installing
// it into a server. Loading is idempotent, so two consecutive digests of the
// same directory must match; the crashchaos harness asserts exactly that.
func StateDigest(dir string) (string, error) {
	ls, _, _, err := loadDurableState(dir)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "next=%d\n", ls.nextSess)
	toks := make([]uint64, 0, len(ls.sessions))
	for t := range ls.sessions {
		toks = append(toks, t)
	}
	sort.Slice(toks, func(i, j int) bool { return toks[i] < toks[j] })
	for _, t := range toks {
		st := ls.sessions[t]
		fmt.Fprintf(&b, "sess=%d tok=%x proc=%s max=%d poison=%q lost=%q\n",
			st.Sess, st.Token, st.Proc, st.MaxOp, st.PoisonErr, st.LostErr)
		for _, e := range st.Window {
			fmt.Fprintf(&b, "  op=%d code=%d err=%q deg=%v done=%v src=%v kernel=%s geom=%d,%d,%d,%d task=%d stream=%d\n",
				e.OpID, e.Code, e.Err, e.Degraded, e.Done, e.Src, e.Kernel,
				e.GridX, e.GridY, e.BlockX, e.BlockY, e.TaskSize, e.Stream)
		}
	}
	names := make([]string, 0, len(ls.profiles))
	for n := range ls.profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := ls.profiles[n]
		fmt.Fprintf(&b, "profile=%s class=%d solo=%.9f\n", n, p.Class, p.SoloSec)
	}
	return b.String(), nil
}

// tokenSalt mixes session IDs into resume tokens. Tokens gate resumption of
// a single-user local daemon's sessions, not authentication; determinism
// (same session order → same tokens) is what the chaos harness needs.
const tokenSalt = 0x9E3779B97F4A7C15

// mix64 is the splitmix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// tokenFor mints the resume token for a session ID. seed distinguishes
// fleet members: without it every daemon would mint the same token for the
// same session ID, and a token is the fleet's only session identity across
// a failover. seed 0 reproduces the historical standalone token stream.
func tokenFor(sess, seed uint64) uint64 {
	z := sess + tokenSalt
	if seed != 0 {
		z ^= mix64(seed + tokenSalt)
	}
	return mix64(z)
}

// EnableDurability turns on the crash-safe state layer: it recovers any
// prior state in cfg.Dir (checkpoint + journal replay + launch replay),
// installs the resumable sessions and warm profiles into the server, and
// opens the journal for appending. Call before Serve.
func (s *Server) EnableDurability(cfg Durability) (*RecoveryStats, error) {
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = DefaultCompactEvery
	}
	// Recovery replays accepted-but-incomplete launches out of the dedup
	// window, so every pending op must still be inside it: an unbounded (or
	// window-sized) per-session pending limit would let accepted ops age out
	// of the window and vanish from replay. Clamp the bound below the window.
	if s.MaxSessionPending <= 0 || s.MaxSessionPending >= DedupWindow {
		s.MaxSessionPending = DedupWindow / 2
	}
	jPath := filepath.Join(cfg.Dir, JournalFile)
	ckptPath := filepath.Join(cfg.Dir, CheckpointFile)

	ls, rstats, ckLoaded, err := loadDurableState(cfg.Dir)
	if err != nil {
		return nil, err
	}
	stats := RecoveryStats{
		JournalPath:      jPath,
		CheckpointPath:   ckptPath,
		CheckpointLoaded: ckLoaded,
		Sessions:         len(ls.sessions),
		Records:          rstats.Records,
		TruncatedBytes:   rstats.TruncatedBytes,
	}
	for _, st := range ls.sessions {
		stats.DedupOps += len(st.Window)
	}
	stats.Profiles = len(ls.profiles)

	w, err := journal.OpenWriter(jPath)
	if err != nil {
		return nil, err
	}
	w.CrashHook = cfg.Crash
	w.NoSync = cfg.NoSync

	d := &durableState{
		w:            w,
		jPath:        jPath,
		ckptPath:     ckptPath,
		compactEvery: cfg.CompactEvery,
		crash:        cfg.Crash,
		nosync:       cfg.NoSync,
		resume:       ls.sessions,
		bySess:       ls.bySess,
	}

	s.mu.Lock()
	if ls.nextSess > s.nextSess {
		s.nextSess = ls.nextSess
	}
	s.mu.Unlock()
	for name, p := range ls.profiles {
		s.Exec.RestoreProfile(name, policy.Class(p.Class), p.SoloSec)
	}
	s.durable = d
	s.Exec.OnProfile = func(name string, class policy.Class, soloSec float64) {
		// No apply: the executor installed the profile in memory (under its
		// own lock) before invoking this hook, so a compaction snapshot
		// already sees it.
		_ = s.journalAppend(&journal.Record{
			Kind: journal.KindProfile, Kernel: name, Class: int(class), SoloSec: soloSec,
		}, nil)
	}

	// Exactly-once launch replay: accepted-but-incomplete source launches
	// re-execute now (their geometry is in the journal); in-process launches
	// cannot (their closures died with the old process) and are marked lost.
	s.replayIncomplete(&stats)
	d.mu.Lock()
	d.stats = stats
	d.mu.Unlock()
	return &stats, nil
}

// replayIncomplete re-executes every accepted source launch without a
// completion record and marks non-replayable ones lost. Runs synchronously
// before the server accepts connections, so a resuming client observes
// fully settled state.
func (s *Server) replayIncomplete(stats *RecoveryStats) {
	d := s.durable
	d.mu.Lock()
	sts := make([]*resumeState, 0, len(d.resume))
	for _, st := range d.resume {
		sts = append(sts, st)
	}
	d.mu.Unlock()
	replayed, lost := s.replaySessions(sts)
	stats.Replayed += replayed
	stats.Lost += lost
}

// replaySessions runs the exactly-once replay pass over the given sessions'
// dedup windows: accepted-but-incomplete source launches re-execute (their
// geometry is journaled), in-process launches are marked lost (their
// closures died with the original process). Both restart recovery and fleet
// adoption settle re-homed work through this one path.
func (s *Server) replaySessions(sts []*resumeState) (replayed, lost int) {
	d := s.durable
	type pending struct {
		st *resumeState
		e  *dedupEntry
	}
	var todo []pending
	d.mu.Lock()
	for _, st := range sts {
		for _, e := range st.Window {
			// Only launches whose accept succeeded are replayable work; a
			// journaled rejection (Code != 0) never executed and never will.
			if !e.Done && e.Code == 0 {
				todo = append(todo, pending{st, e})
			}
		}
	}
	d.mu.Unlock()
	sort.Slice(todo, func(i, j int) bool {
		if todo[i].st.Sess != todo[j].st.Sess {
			return todo[i].st.Sess < todo[j].st.Sess
		}
		return todo[i].e.OpID < todo[j].e.OpID
	})
	for _, p := range todo {
		if !p.e.Src {
			msg := fmt.Sprintf("daemon: launch op %d lost in crash (in-process kernel not replayable)", p.e.OpID)
			d.mu.Lock()
			if p.st.LostErr == "" {
				p.st.LostErr = msg
			}
			d.mu.Unlock()
			s.completeLaunch(p.st, p.e.OpID, errors.New(msg))
			lost++
			continue
		}
		spec := synthesizeSourceSpec(&ipc.Request{
			Kernel: p.e.Kernel,
			GridX:  p.e.GridX, GridY: p.e.GridY, BlockX: p.e.BlockX, BlockY: p.e.BlockY,
		})
		var err error
		if spec == nil {
			err = fmt.Errorf("daemon: replay op %d: invalid journaled geometry", p.e.OpID)
		} else if p.e.Degraded {
			err = s.Exec.RunVanilla(spec, p.e.TaskSize)
		} else {
			err = s.Exec.Run(spec, p.e.TaskSize)
		}
		s.completeLaunch(p.st, p.e.OpID, err)
		replayed++
	}
	return replayed, lost
}

// RecoveryStatsSnapshot returns the stats EnableDurability produced (nil on
// a volatile server).
func (s *Server) RecoveryStatsSnapshot() *RecoveryStats {
	if s.durable == nil {
		return nil
	}
	s.durable.mu.Lock()
	defer s.durable.mu.Unlock()
	st := s.durable.stats
	return &st
}

// DedupHits reports how many duplicate ops the dedup window absorbed since
// startup (replays answered from stored acks plus out-of-window rejections).
func (s *Server) DedupHits() int {
	if s.durable == nil {
		return 0
	}
	s.durable.mu.Lock()
	defer s.durable.mu.Unlock()
	return s.durable.dedupHits
}

// Crashed reports whether an injected crash site fired: the simulated
// process is dead and refuses all further work.
func (s *Server) Crashed() bool { return s.crashed.Load() }

// crash simulates process death after a fired crash site: every transport
// closes mid-conversation (no acks escape), new connections are refused,
// and the journal writer dies with the process — a dead process cannot
// append, so an in-flight worker finishing after the crash can never make
// its completion durable. The append-path sites mark the writer dead
// themselves; this covers deaths that fire elsewhere (checkpoint.mid),
// which would otherwise leave the durability of post-crash completions to
// goroutine timing.
func (s *Server) crash() {
	if s.crashed.Swap(true) {
		return
	}
	if s.durable != nil {
		s.durable.w.Kill()
	}
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
}

// Kill fences the daemon for failover (STONITH-style): the simulated
// process dies instantly — every transport closes mid-conversation, new
// connections are refused, and the journal writer refuses all further
// appends, so nothing this daemon does after Kill returns can become
// durable. The fleet supervisor calls it before adopting the daemon's
// state-dir; without the fence, a hung-but-alive daemon could journal a
// completion concurrently with the adopter re-executing the same launch.
func (s *Server) Kill() { s.crash() }

// journalAppend writes one record through the WAL and — still under the
// compaction lock — runs apply, the record's in-memory effect. Append and
// apply are atomic with respect to compaction: a record is either absent
// from both journal and memory (append died) or present in both before any
// checkpoint can snapshot, so compaction never erases a record whose effect
// the checkpoint missed. When the log is due afterwards it is folded into
// the checkpoint before the lock is released. A fired crash site kills the
// daemon (conns close, no ack escapes) and surfaces fault.ErrCrash to the
// caller; apply does not run — the record may be durable, but recovery
// replay rebuilds its effect. Any OTHER append failure — a write error, a
// short write, a failed fsync — kills the daemon too: the policy is
// fail-stop, because a record whose durability is unknown must never be
// followed by an ack (fsyncgate), and a journal that can no longer write
// cannot uphold write-ahead for anything that follows.
func (s *Server) journalAppend(rec *journal.Record, apply func()) error {
	if s.durable == nil {
		return nil
	}
	d := s.durable
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	if err := d.w.Append(rec); err != nil {
		s.crash()
		return err
	}
	if apply != nil {
		apply()
	}
	if d.w.Records() >= d.compactEvery {
		s.compactLocked()
	}
	return nil
}

// compactLocked folds the journal into the checkpoint. Caller holds
// d.compactMu, so no append can land between the snapshot and the journal
// reset, and only one compaction runs at a time. The snapshot deep-copies
// every session under d.mu — json.Marshal then reads the copies without any
// lock while live states keep mutating. Crash ordering: the checkpoint
// publishes (rename) before the journal resets, so a death between the two
// re-delivers every checkpointed record on recovery — which idempotent
// apply absorbs.
func (s *Server) compactLocked() {
	d := s.durable
	d.mu.Lock()
	ck := &checkpointState{Profiles: map[string]profileSnap{}}
	for _, st := range d.resume {
		ck.Sessions = append(ck.Sessions, st.clone())
	}
	d.mu.Unlock()
	sort.Slice(ck.Sessions, func(i, j int) bool { return ck.Sessions[i].Sess < ck.Sessions[j].Sess })
	s.mu.Lock()
	ck.NextSess = s.nextSess
	s.mu.Unlock()
	s.Exec.mu.Lock()
	for name, p := range s.Exec.profiles {
		ck.Profiles[name] = profileSnap{Class: int(p.class), SoloSec: p.soloSec}
	}
	s.Exec.mu.Unlock()

	if err := journal.WriteCheckpoint(d.ckptPath, ck, d.crash); err != nil {
		if errors.Is(err, fault.ErrCrash) {
			s.crash()
		}
		return // journal keeps everything; next compaction retries
	}
	_ = d.w.Reset()
}

// openSession mints a durable session identity for a fresh hello (or an
// unknown resume token) and journals it pre-ack. Returns the resume state,
// or an error when the append died (the caller must vanish without acking).
func (s *Server) openSession(ss *session, proc string) (*resumeState, error) {
	if s.durable == nil {
		return nil, nil
	}
	st := &resumeState{Sess: ss.id, Token: tokenFor(ss.id, s.TokenSeed), Proc: proc, attached: true}
	d := s.durable
	if err := s.journalAppend(&journal.Record{
		Kind: journal.KindSessionOpen, Sess: st.Sess, Token: st.Token, Proc: proc,
	}, func() {
		d.mu.Lock()
		d.resume[st.Token] = st
		d.bySess[st.Sess] = st
		d.mu.Unlock()
	}); err != nil {
		return nil, err
	}
	return st, nil
}

// resumeSession reattaches a recovered session by token. Verdicts:
// (state, true)  — found and reattached, durable state restored;
// (nil, false)   — unknown token or already attached: the caller falls back
// to a fresh session (client runs degraded, PR 1 semantics).
func (s *Server) resumeSession(token uint64) (*resumeState, bool) {
	if s.durable == nil || token == 0 {
		return nil, false
	}
	d := s.durable
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.resume[token]
	if !ok || st.attached {
		return nil, false
	}
	st.attached = true
	return st, true
}

// detachSession releases a resume binding at teardown so a later OpResume
// can reattach.
func (s *Server) detachSession(st *resumeState) {
	if s.durable == nil || st == nil {
		return
	}
	s.durable.mu.Lock()
	st.attached = false
	s.durable.mu.Unlock()
}

// closeSession discards a session's resumable state after a clean OpClose.
func (s *Server) closeSession(st *resumeState) {
	if s.durable == nil || st == nil {
		return
	}
	d := s.durable
	_ = s.journalAppend(&journal.Record{Kind: journal.KindSessionClose, Sess: st.Sess}, func() {
		d.mu.Lock()
		delete(d.resume, st.Token)
		delete(d.bySess, st.Sess)
		d.mu.Unlock()
	})
}

// dedupCheck answers a replayed launch from the session's dedup window.
// Returns true when the request was handled (rep filled with the original
// ack, or a CodeDuplicateOp rejection) and must not execute.
func (s *Server) dedupCheck(st *resumeState, req *ipc.Request, rep *ipc.Reply) bool {
	if s.durable == nil || st == nil || req.OpID == 0 {
		return false
	}
	d := s.durable
	d.mu.Lock()
	defer d.mu.Unlock()
	if req.OpID > st.MaxOp {
		return false
	}
	d.dedupHits++
	if e := st.entry(req.OpID); e != nil {
		rep.Code, rep.Err = ipc.ErrCode(e.Code), e.Err
		rep.Degraded, rep.Entries = e.Degraded, e.Entries
		rep.Dup = true
		return true
	}
	rep.Code = ipc.CodeDuplicateOp
	rep.Err = fmt.Sprintf("daemon: op %d already accepted, outcome outside dedup window", req.OpID)
	return true
}

// acceptLaunch journals a launch's accept record — write-ahead of the ack —
// and installs its dedup entry. src carries the replay geometry. A fired
// crash site returns fault.ErrCrash: the caller dies without acking.
func (s *Server) acceptLaunch(st *resumeState, req *ipc.Request, rep *ipc.Reply, src bool) error {
	if s.durable == nil || st == nil || req.OpID == 0 {
		return nil
	}
	rec := &journal.Record{
		Kind: journal.KindLaunchAccept, Sess: st.Sess, OpID: req.OpID,
		Code: uint8(rep.Code), Err: rep.Err, Degraded: rep.Degraded, Entries: rep.Entries,
		Src: src, Kernel: req.Kernel,
		GridX: req.GridX, GridY: req.GridY, BlockX: req.BlockX, BlockY: req.BlockY,
		TaskSize: req.TaskSize, Stream: req.Stream,
	}
	d := s.durable
	return s.journalAppend(rec, func() {
		d.mu.Lock()
		st.push(&dedupEntry{
			OpID: req.OpID, Code: uint8(rep.Code), Err: rep.Err,
			Degraded: rep.Degraded, Entries: rep.Entries,
			Src: src, Kernel: req.Kernel,
			GridX: req.GridX, GridY: req.GridY, BlockX: req.BlockX, BlockY: req.BlockY,
			TaskSize: req.TaskSize, Stream: req.Stream,
		})
		d.mu.Unlock()
	})
}

// completeLaunch journals a launch's terminal outcome and marks its dedup
// entry done; a session-poisoning outcome (panic, containment timeout) also
// journals the strike so a restart keeps the session poisoned.
func (s *Server) completeLaunch(st *resumeState, opID uint64, err error) {
	if s.durable == nil || st == nil || opID == 0 {
		return
	}
	rec := &journal.Record{Kind: journal.KindLaunchComplete, Sess: st.Sess, OpID: opID}
	if err != nil {
		rep := &ipc.Reply{}
		fail(rep, err)
		rec.Code, rec.Err = uint8(rep.Code), rep.Err
	}
	d := s.durable
	if aerr := s.journalAppend(rec, func() {
		d.mu.Lock()
		if e := st.entry(opID); e != nil {
			e.Done = true
		}
		d.mu.Unlock()
	}); aerr != nil {
		return // simulated death: nothing after this record is durable
	}
	if errors.Is(err, ErrKernelPanic) || errors.Is(err, ErrKernelTimeout) {
		rep := &ipc.Reply{}
		fail(rep, err)
		// The poison must land on the in-memory state too, not just the
		// journal: a later compaction snapshots memory and discards the
		// strike record, and the checkpoint must still carry the poison.
		_ = s.journalAppend(&journal.Record{
			Kind: journal.KindStrike, Sess: st.Sess, Action: "poison",
			Code: uint8(rep.Code), Err: rep.Err,
		}, func() {
			d.mu.Lock()
			st.PoisonErr, st.PoisonCode = rep.Err, uint8(rep.Code)
			d.mu.Unlock()
		})
	}
}

// journalAppendBatch is journalAppend for a group commit: every record in
// recs reaches the file in one write and one fsync (journal.AppendBatch), and
// apply — the combined in-memory effect, in record order — runs under the
// same compaction lock. The on-disk bytes are identical to len(recs)
// sequential Appends, so recovery replay, adoption, and migration consume
// batched records with no format awareness. A fired crash site kills the
// daemon and surfaces fault.ErrCrash exactly like the single-record path;
// any other failure (write error, short write, failed fsync) is fail-stop
// the same way — no item of a group whose commit failed may ever be acked.
func (s *Server) journalAppendBatch(recs []*journal.Record, apply func()) error {
	if s.durable == nil || len(recs) == 0 {
		return nil
	}
	d := s.durable
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	if err := d.w.AppendBatch(recs); err != nil {
		s.crash()
		return err
	}
	if apply != nil {
		apply()
	}
	if d.w.Records() >= d.compactEvery {
		s.compactLocked()
	}
	return nil
}

// dedupCheckItem is dedupCheck for one batched launch: same window semantics
// (in-window → original ack replayed with Dup set; at-or-below MaxOp but aged
// out → CodeDuplicateOp), answered into the item's BatchAck.
func (s *Server) dedupCheckItem(st *resumeState, opID uint64, ack *ipc.BatchAck) bool {
	if s.durable == nil || st == nil || opID == 0 {
		return false
	}
	d := s.durable
	d.mu.Lock()
	defer d.mu.Unlock()
	if opID > st.MaxOp {
		return false
	}
	d.dedupHits++
	if e := st.entry(opID); e != nil {
		ack.Code, ack.Err = ipc.ErrCode(e.Code), e.Err
		ack.Degraded, ack.Entries = e.Degraded, e.Entries
		ack.Dup = true
		return true
	}
	ack.Code = ipc.CodeDuplicateOp
	ack.Err = fmt.Sprintf("daemon: op %d already accepted, outcome outside dedup window", opID)
	return true
}

// acceptLaunchBatch journals the accept records for every accepted item of a
// batch — write-ahead of the single batch ack — in one group commit, and
// installs their dedup entries in op-ID order. idxs selects the accepted
// items (per-item rejections are acked but never journaled, mirroring the
// single-launch path where a failed prepare is a definite rejection). A fired
// crash site returns fault.ErrCrash: the caller dies without acking, so
// either no item of the batch is durable (torn prefix truncates on replay) or
// all are (durable, un-acked; the dedup window absorbs the re-send).
func (s *Server) acceptLaunchBatch(st *resumeState, batch []ipc.BatchItem, acks []ipc.BatchAck, idxs []int) error {
	if s.durable == nil || st == nil || len(idxs) == 0 {
		return nil
	}
	recs := make([]*journal.Record, 0, len(idxs))
	entries := make([]*dedupEntry, 0, len(idxs))
	for _, i := range idxs {
		it, a := &batch[i], &acks[i]
		recs = append(recs, &journal.Record{
			Kind: journal.KindLaunchAccept, Sess: st.Sess, OpID: it.OpID,
			Code: uint8(a.Code), Err: a.Err, Degraded: a.Degraded, Entries: a.Entries,
			Src: it.Src, Kernel: it.Kernel,
			GridX: it.GridX, GridY: it.GridY, BlockX: it.BlockX, BlockY: it.BlockY,
			TaskSize: it.TaskSize, Stream: it.Stream,
		})
		entries = append(entries, &dedupEntry{
			OpID: it.OpID, Code: uint8(a.Code), Err: a.Err,
			Degraded: a.Degraded, Entries: a.Entries,
			Src: it.Src, Kernel: it.Kernel,
			GridX: it.GridX, GridY: it.GridY, BlockX: it.BlockX, BlockY: it.BlockY,
			TaskSize: it.TaskSize, Stream: it.Stream,
		})
	}
	d := s.durable
	return s.journalAppendBatch(recs, func() {
		d.mu.Lock()
		for _, e := range entries {
			st.push(e)
		}
		d.mu.Unlock()
	})
}

// launchOutcome is one finished launch awaiting its completion record; the
// dispatch loop collects these and completeLaunches group-commits them.
type launchOutcome struct {
	st   *resumeState
	opID uint64
	err  error
}

// completeLaunches is completeLaunch for a group of finished launches: every
// completion record — and, for session-poisoning outcomes, the strike record
// ordered right after its completion — lands in one fsync. Per-record order
// inside the batch matches what sequential completeLaunch calls would have
// written, so replay sees an identical log. A simulated death drops the whole
// group: none of the completions is durable and recovery re-executes them,
// which the exactly-once contract permits (completion loss, not duplication).
func (s *Server) completeLaunches(outs []launchOutcome) {
	if s.durable == nil {
		return
	}
	d := s.durable
	recs := make([]*journal.Record, 0, len(outs))
	applies := make([]func(), 0, len(outs))
	for _, o := range outs {
		if o.st == nil || o.opID == 0 {
			continue
		}
		rec := &journal.Record{Kind: journal.KindLaunchComplete, Sess: o.st.Sess, OpID: o.opID}
		if o.err != nil {
			rep := &ipc.Reply{}
			fail(rep, o.err)
			rec.Code, rec.Err = uint8(rep.Code), rep.Err
		}
		recs = append(recs, rec)
		st, op := o.st, o.opID
		applies = append(applies, func() {
			d.mu.Lock()
			if e := st.entry(op); e != nil {
				e.Done = true
			}
			d.mu.Unlock()
		})
		if errors.Is(o.err, ErrKernelPanic) || errors.Is(o.err, ErrKernelTimeout) {
			rep := &ipc.Reply{}
			fail(rep, o.err)
			recs = append(recs, &journal.Record{
				Kind: journal.KindStrike, Sess: st.Sess, Action: "poison",
				Code: uint8(rep.Code), Err: rep.Err,
			})
			code, msg := uint8(rep.Code), rep.Err
			applies = append(applies, func() {
				d.mu.Lock()
				st.PoisonErr, st.PoisonCode = msg, code
				d.mu.Unlock()
			})
		}
	}
	if len(recs) == 0 {
		return
	}
	_ = s.journalAppendBatch(recs, func() {
		for _, f := range applies {
			f()
		}
	})
}

// CloseDurability closes the journal writer (tests and shutdown).
func (s *Server) CloseDurability() error {
	if s.durable == nil {
		return nil
	}
	return s.durable.w.Close()
}
