// Package device assembles the full GPU model: SM array, memory system, L2
// geometry, and the latency constants that govern scheduling overheads. The
// default preset reproduces the evaluation platform of the paper, an NVIDIA
// Titan Xp (GP102, Pascal).
package device

import (
	"fmt"

	"slate/internal/cache"
	"slate/internal/memsys"
	"slate/internal/smsim"
)

// Device is a complete GPU model.
type Device struct {
	Name   string
	NumSMs int
	SM     smsim.SM
	DRAM   memsys.DRAM
	L2     cache.Config
	PCIe   memsys.PCIe
	// MemoryBytes is the global memory capacity.
	MemoryBytes int64

	// BlockDispatchSeconds is the hardware scheduler's per-block dispatch
	// cost (pipeline setup, register allocation, parameter broadcast). The
	// hardware pays it for every user block; Slate pays it only for its
	// persistent workers.
	BlockDispatchSeconds float64
	// BlockLatencySeconds is the minimum service time of a block
	// independent of its work (drain/launch latency floor).
	BlockLatencySeconds float64
	// KernelLaunchSeconds is the host-side cost of a kernel launch.
	KernelLaunchSeconds float64
	// AtomicSerialSeconds is the serialized cost of one global atomicAdd on
	// a contended address — the Slate task-queue pull (Listing 2).
	AtomicSerialSeconds float64
	// ResizeSeconds is the cost of a Slate resize: raise the retreat flag,
	// drain in-flight tasks, relaunch workers on the new SM range
	// (Listing 3's dispatch-kernel loop).
	ResizeSeconds float64
	// ContextSwitchSeconds is the vanilla-CUDA cost of switching between
	// process contexts when time-slicing.
	ContextSwitchSeconds float64
	// InjectedInstrOverhead is the fractional instruction overhead of the
	// Slate preamble/scheduling code (§V-D1 measures ~3% on BS).
	InjectedInstrOverhead float64
}

// Validate reports configuration errors.
func (d *Device) Validate() error {
	if d.NumSMs <= 0 {
		return fmt.Errorf("device: NumSMs %d must be positive", d.NumSMs)
	}
	if err := d.SM.Validate(); err != nil {
		return fmt.Errorf("device %q: %w", d.Name, err)
	}
	if err := d.DRAM.Validate(); err != nil {
		return fmt.Errorf("device %q: %w", d.Name, err)
	}
	if d.MemoryBytes <= 0 {
		return fmt.Errorf("device: MemoryBytes %d must be positive", d.MemoryBytes)
	}
	if d.BlockDispatchSeconds < 0 || d.BlockLatencySeconds < 0 ||
		d.KernelLaunchSeconds < 0 || d.AtomicSerialSeconds < 0 ||
		d.ResizeSeconds < 0 || d.ContextSwitchSeconds < 0 {
		return fmt.Errorf("device: negative latency constant")
	}
	if d.InjectedInstrOverhead < 0 || d.InjectedInstrOverhead > 1 {
		return fmt.Errorf("device: InjectedInstrOverhead %v outside [0,1]", d.InjectedInstrOverhead)
	}
	return nil
}

// PeakFLOPS returns the device's aggregate single-precision peak.
func (d *Device) PeakFLOPS() float64 { return float64(d.NumSMs) * d.SM.PeakFLOPS() }

// ResidentBlocks returns the per-SM resident block count for a shape.
func (d *Device) ResidentBlocks(b smsim.BlockShape) int { return smsim.ResidentBlocks(d.SM, b) }

// MaxWorkers returns the Slate persistent-worker count for a block shape on
// a range of sms SMs: the maximum number of blocks those SMs can hold
// simultaneously (§III-C: "Slate always sets the size of workers as the
// maximum number of thread blocks that the designated SMs can support").
func (d *Device) MaxWorkers(b smsim.BlockShape, sms int) int {
	if sms <= 0 {
		return 0
	}
	if sms > d.NumSMs {
		sms = d.NumSMs
	}
	return sms * smsim.ResidentBlocks(d.SM, b)
}

// TitanXp returns the evaluation platform model: 30 SMs of GP102 at
// 1.582 GHz, 12 GB GDDR5X at 547.6 GB/s with the 9-SM saturation knee the
// paper measures (Fig. 1), and a 3 MiB L2.
func TitanXp() *Device {
	return &Device{
		Name:   "NVIDIA Titan Xp (GP102)",
		NumSMs: 30,
		SM: smsim.SM{
			MaxThreads:          2048,
			MaxBlocks:           32,
			Registers:           65536,
			SharedMemBytes:      98304,
			FP32Lanes:           128,
			ClockHz:             1.582e9,
			WarpsForComputePeak: 16,
			WarpsForMemPeak:     48,
		},
		DRAM: memsys.DRAM{
			PeakBandwidth:    547.6e9,
			StreamEfficiency: 0.88,
			KneeSMs:          9,
			MinRunEfficiency: 0.35,
			FullRunBytes:     4096,
			L2Bandwidth:      2.0e12,
			CorunEfficiency:  0.85,
		},
		L2:          cache.TitanXpL2(),
		PCIe:        memsys.PCIe{Bandwidth: 12.5e9, Latency: 10e-6},
		MemoryBytes: 12 << 30,

		BlockDispatchSeconds:  0.4e-6,
		BlockLatencySeconds:   1.2e-6,
		KernelLaunchSeconds:   6e-6,
		AtomicSerialSeconds:   0.35e-6,
		ResizeSeconds:         25e-6,
		ContextSwitchSeconds:  15e-6,
		InjectedInstrOverhead: 0.03,
	}
}
