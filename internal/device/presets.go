package device

import (
	"slate/internal/cache"
	"slate/internal/memsys"
	"slate/internal/smsim"
)

// TeslaP100 returns a GP100 model: 56 SMs of 64 FP32 lanes at 1.48 GHz
// (~10.6 TFLOP/s), 16 GB HBM2 at 732 GB/s, 4 MiB L2. HBM2's wide interface
// needs more concurrent SMs to saturate than GDDR5X, so the knee sits
// higher than the Titan Xp's.
func TeslaP100() *Device {
	return &Device{
		Name:   "NVIDIA Tesla P100 (GP100)",
		NumSMs: 56,
		SM: smsim.SM{
			MaxThreads:          2048,
			MaxBlocks:           32,
			Registers:           65536,
			SharedMemBytes:      65536,
			FP32Lanes:           64,
			ClockHz:             1.48e9,
			WarpsForComputePeak: 12,
			WarpsForMemPeak:     40,
		},
		DRAM: memsys.DRAM{
			PeakBandwidth:    732e9,
			StreamEfficiency: 0.80,
			KneeSMs:          14,
			MinRunEfficiency: 0.40,
			FullRunBytes:     4096,
			L2Bandwidth:      2.5e12,
			CorunEfficiency:  0.88, // HBM2's many banks tolerate sharing better
		},
		L2:          cache.Config{SizeBytes: 4 << 20, LineBytes: 64, Ways: 16},
		PCIe:        memsys.PCIe{Bandwidth: 12.5e9, Latency: 10e-6},
		MemoryBytes: 16 << 30,

		BlockDispatchSeconds:  0.4e-6,
		BlockLatencySeconds:   1.2e-6,
		KernelLaunchSeconds:   6e-6,
		AtomicSerialSeconds:   0.35e-6,
		ResizeSeconds:         25e-6,
		ContextSwitchSeconds:  15e-6,
		InjectedInstrOverhead: 0.03,
	}
}

// TeslaV100 returns a GV100 model: 80 SMs of 64 FP32 lanes at 1.53 GHz
// (~15.7 TFLOP/s), 16 GB HBM2 at 900 GB/s, 6 MiB L2 — the architecture
// whose white paper motivates the paper's §II ("sharing expedites workload
// execution by seven times").
func TeslaV100() *Device {
	return &Device{
		Name:   "NVIDIA Tesla V100 (GV100)",
		NumSMs: 80,
		SM: smsim.SM{
			MaxThreads:          2048,
			MaxBlocks:           32,
			Registers:           65536,
			SharedMemBytes:      98304,
			FP32Lanes:           64,
			ClockHz:             1.53e9,
			WarpsForComputePeak: 12,
			WarpsForMemPeak:     40,
		},
		DRAM: memsys.DRAM{
			PeakBandwidth:    900e9,
			StreamEfficiency: 0.82,
			KneeSMs:          18,
			MinRunEfficiency: 0.40,
			FullRunBytes:     4096,
			L2Bandwidth:      3.5e12,
			CorunEfficiency:  0.88,
		},
		L2:          cache.Config{SizeBytes: 6 << 20, LineBytes: 64, Ways: 16},
		PCIe:        memsys.PCIe{Bandwidth: 12.5e9, Latency: 10e-6},
		MemoryBytes: 16 << 30,

		BlockDispatchSeconds:  0.35e-6,
		BlockLatencySeconds:   1.0e-6,
		KernelLaunchSeconds:   5e-6,
		AtomicSerialSeconds:   0.30e-6,
		ResizeSeconds:         20e-6,
		ContextSwitchSeconds:  12e-6,
		InjectedInstrOverhead: 0.03,
	}
}

// JetsonTX2 returns an embedded-class model: 2 Pascal SMs at 1.3 GHz
// sharing 59.7 GB/s of LPDDR4 with the CPU. With two SMs and a knee of
// one, almost any kernel saturates the memory system — the regime the
// paper's related work (Lee et al.) targets.
func JetsonTX2() *Device {
	return &Device{
		Name:   "NVIDIA Jetson TX2 (GP10B)",
		NumSMs: 2,
		SM: smsim.SM{
			MaxThreads:          2048,
			MaxBlocks:           32,
			Registers:           65536,
			SharedMemBytes:      65536,
			FP32Lanes:           128,
			ClockHz:             1.3e9,
			WarpsForComputePeak: 16,
			WarpsForMemPeak:     48,
		},
		DRAM: memsys.DRAM{
			PeakBandwidth:    59.7e9,
			StreamEfficiency: 0.75,
			KneeSMs:          1,
			MinRunEfficiency: 0.30,
			FullRunBytes:     4096,
			L2Bandwidth:      120e9,
			CorunEfficiency:  0.80,
		},
		L2:          cache.Config{SizeBytes: 512 << 10, LineBytes: 64, Ways: 16},
		PCIe:        memsys.PCIe{Bandwidth: 8e9, Latency: 15e-6}, // unified memory path
		MemoryBytes: 8 << 30,

		BlockDispatchSeconds:  0.5e-6,
		BlockLatencySeconds:   1.5e-6,
		KernelLaunchSeconds:   10e-6,
		AtomicSerialSeconds:   0.45e-6,
		ResizeSeconds:         30e-6,
		ContextSwitchSeconds:  25e-6,
		InjectedInstrOverhead: 0.03,
	}
}
