package device

import (
	"math"
	"testing"

	"slate/internal/smsim"
)

func TestTitanXpValid(t *testing.T) {
	d := TitanXp()
	if err := d.Validate(); err != nil {
		t.Fatalf("TitanXp preset invalid: %v", err)
	}
}

func TestTitanXpHeadlineNumbers(t *testing.T) {
	d := TitanXp()
	if d.NumSMs != 30 {
		t.Errorf("NumSMs = %d, want 30", d.NumSMs)
	}
	// Advertised ~12.15 TFLOP/s FP32.
	if peak := d.PeakFLOPS(); math.Abs(peak-12.15e12)/12.15e12 > 0.01 {
		t.Errorf("PeakFLOPS = %v, want ≈12.15e12", peak)
	}
	if d.MemoryBytes != 12<<30 {
		t.Errorf("MemoryBytes = %d, want 12 GiB", d.MemoryBytes)
	}
	if d.DRAM.KneeSMs != 9 {
		t.Errorf("KneeSMs = %d, want the paper's 9", d.DRAM.KneeSMs)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	muts := []func(*Device){
		func(d *Device) { d.NumSMs = 0 },
		func(d *Device) { d.SM.ClockHz = 0 },
		func(d *Device) { d.DRAM.PeakBandwidth = 0 },
		func(d *Device) { d.MemoryBytes = 0 },
		func(d *Device) { d.BlockDispatchSeconds = -1 },
		func(d *Device) { d.InjectedInstrOverhead = 2 },
	}
	for i, mut := range muts {
		d := TitanXp()
		mut(d)
		if d.Validate() == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestMaxWorkers(t *testing.T) {
	d := TitanXp()
	shape := smsim.BlockShape{Threads: 256} // 8 resident per SM
	if got := d.MaxWorkers(shape, 30); got != 240 {
		t.Fatalf("MaxWorkers(full device) = %d, want 240", got)
	}
	if got := d.MaxWorkers(shape, 10); got != 80 {
		t.Fatalf("MaxWorkers(10 SMs) = %d, want 80", got)
	}
	if got := d.MaxWorkers(shape, 0); got != 0 {
		t.Fatalf("MaxWorkers(0 SMs) = %d, want 0", got)
	}
	// Clamps to device size.
	if got := d.MaxWorkers(shape, 100); got != 240 {
		t.Fatalf("MaxWorkers(overclamped) = %d, want 240", got)
	}
}

func TestResidentBlocksDelegates(t *testing.T) {
	d := TitanXp()
	if got := d.ResidentBlocks(smsim.BlockShape{Threads: 256}); got != 8 {
		t.Fatalf("ResidentBlocks = %d, want 8", got)
	}
}
