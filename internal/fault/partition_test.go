package fault

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

func TestPartitionRejectMode(t *testing.T) {
	p := NewPartition(PartitionReject)
	dial := p.Dial(func() net.Conn { c, _ := net.Pipe(); return c })
	c, err := dial()
	if err != nil {
		t.Fatalf("healed dial: %v", err)
	}
	p.Cut()
	if !p.Severed() || p.Cuts() != 1 {
		t.Fatalf("severed=%v cuts=%d", p.Severed(), p.Cuts())
	}
	// The established connection was torn, like real TCP across a dead link.
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("tracked conn survived the cut")
	}
	if _, err := dial(); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("cut dial: %v, want ErrPartitioned", err)
	}
	p.Heal()
	if _, err := dial(); err != nil {
		t.Fatalf("healed dial after cut: %v", err)
	}
	// Cut is idempotent while already cut.
	p.Cut()
	p.Cut()
	if p.Cuts() != 2 {
		t.Fatalf("cuts=%d, want 2", p.Cuts())
	}
}

func TestPartitionDropModeBlackholes(t *testing.T) {
	p := NewPartition(PartitionDrop)
	p.Cut()
	dial := p.Dial(func() net.Conn { c, _ := net.Pipe(); return c })
	c, err := dial()
	if err != nil {
		t.Fatalf("drop-mode dial should 'succeed': %v", err)
	}
	defer c.Close()
	// Writes vanish into the void.
	if n, err := c.Write([]byte("hello?")); err != nil || n != 6 {
		t.Fatalf("blackhole write: n=%d err=%v", n, err)
	}
	// Reads block until the deadline, then surface the standard error.
	_ = c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err = c.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackhole read: %v, want deadline exceeded", err)
	}
	if took := time.Since(start); took < 20*time.Millisecond {
		t.Fatalf("read returned in %v, before the deadline", took)
	}
}

func TestPartitionDropCloseUnblocksRead(t *testing.T) {
	p := NewPartition(PartitionDrop)
	p.Cut()
	c, err := p.Dial(func() net.Conn { cc, _ := net.Pipe(); return cc })()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, rerr := c.Read(make([]byte, 1))
		done <- rerr
	}()
	time.Sleep(10 * time.Millisecond)
	_ = c.Close()
	select {
	case rerr := <-done:
		if !errors.Is(rerr, ErrPartitioned) {
			t.Fatalf("read after close: %v, want ErrPartitioned", rerr)
		}
	case <-time.After(time.Second):
		t.Fatal("close did not unblock the blackholed read")
	}
}
