package fault

import "errors"

// Crash sites: the named points in the daemon's durability paths where a
// process death has distinct consequences. The crashchaos harness
// kill-and-restarts the daemon at every one of them.
const (
	// SiteJournalAppendPre: death while appending a journal record — the
	// frame is torn mid-write, so the record is NOT durable and the client
	// was never acked. Replay must truncate the torn tail; the client must
	// re-send, and the re-send must execute (it never ran).
	SiteJournalAppendPre = "journal.append.pre"
	// SiteJournalAppendPost: death after the record reached the journal but
	// before the ack left — durable, un-acked. The client re-sends and must
	// get the original outcome back without a second execution.
	SiteJournalAppendPost = "journal.append.post"
	// SiteCheckpointMid: death halfway through writing a compaction
	// checkpoint — a partial temp file exists, the rename never happened.
	// Recovery must ignore the partial file and use old checkpoint + journal.
	SiteCheckpointMid = "checkpoint.mid"
	// SiteProfileRenameMid: death between writing the profile table's temp
	// file and renaming it into place — the published table must remain the
	// previous complete version.
	SiteProfileRenameMid = "profile.rename.mid"
	// SiteJournalBatchMid: death partway through a group-commit batch append —
	// a prefix of the batch's records reached the file whole, the next frame
	// is torn, and nothing was fsynced. Replay must truncate back to the last
	// whole record; no item of the batch was acked, so the client re-sends the
	// whole batch and every item must execute exactly once.
	SiteJournalBatchMid = "journal.batch.mid"
	// SiteJournalBatchPost: death after the whole batch is durable (one
	// fsync) but before the batch ack left — every record durable, none
	// acked. The re-sent batch must be answered entirely from the dedup
	// window without a second execution.
	SiteJournalBatchPost = "journal.batch.post"

	// Disk-fault sites: the disk fails while the process lives. The
	// journal's policy is fail-stop — any of these marks the writer dead
	// and the daemon kills itself before an ack can escape, so their
	// recovery contract is identical to a crash at the same point.

	// SiteJournalWriteErr: the write(2) itself errors before any byte of
	// the frame reaches the file — the record is NOT durable, nothing was
	// acked, and the writer is dead. Replay sees a clean tail.
	SiteJournalWriteErr = "journal.write.err"
	// SiteJournalWriteShort: the write lands only a torn prefix of the
	// frame (a short write on a full disk) — NOT durable, not acked,
	// writer dead. Replay must truncate the torn tail.
	SiteJournalWriteShort = "journal.write.short"
	// SiteJournalSyncErr: the frame is fully written but fsync fails — the
	// record MAY be durable, but a failed fsync must never be followed by
	// an ack (fsyncgate), so the writer dies with the ack unsent. If the
	// bytes survived, recovery replays the launch exactly once; the
	// re-sending client is answered from the dedup window.
	SiteJournalSyncErr = "journal.fsync.err"
)

// CrashSites lists every named crash site, in a stable order, for harnesses
// that iterate the whole matrix.
func CrashSites() []string {
	return []string{SiteJournalAppendPre, SiteJournalAppendPost, SiteCheckpointMid, SiteProfileRenameMid,
		SiteJournalBatchMid, SiteJournalBatchPost,
		SiteJournalWriteErr, SiteJournalWriteShort, SiteJournalSyncErr}
}

// ErrCrash is the typed cause every simulated crash returns. A component
// receiving it must behave as if the process died at that instant: abandon
// the operation, send nothing, clean up nothing.
var ErrCrash = errors.New("fault: injected crash")

// Crasher simulates one process death: it fires ErrCrash on the Nth hit of
// its configured site and never again (a process only dies once). Hits are
// counted per site, deterministically, so a (site, n) pair names one exact
// crash point across runs. A nil *Crasher never fires, so components can
// call Hook() results unconditionally.
type Crasher struct {
	inj  *Injector // reuses the per-site counters for determinism bookkeeping
	site string
	at   uint64
}

// NewCrasher arms a crash at the n-th hit (0-based) of the named site.
func NewCrasher(site string, n uint64) *Crasher {
	return &Crasher{inj: New(Config{}), site: site, at: n}
}

// Hit reports whether this call is the armed crash point for site, firing at
// most once.
func (c *Crasher) Hit(site string) bool {
	if c == nil || site != c.site {
		return false
	}
	c.inj.mu.Lock()
	defer c.inj.mu.Unlock()
	n := c.inj.counters[site]
	c.inj.counters[site] = n + 1
	if n != c.at {
		return false
	}
	c.inj.events = append(c.inj.events, Event{Site: site, N: n, Kind: "crash"})
	return true
}

// Fired reports whether the armed crash has happened.
func (c *Crasher) Fired() bool {
	if c == nil {
		return false
	}
	return len(c.inj.Events()) > 0
}

// Hook adapts the crasher to the func(site) error shape the durability
// layers accept: it returns ErrCrash exactly at the armed hit. A nil
// receiver yields a usable hook that never fires.
func (c *Crasher) Hook() func(site string) error {
	return func(site string) error {
		if c.Hit(site) {
			return ErrCrash
		}
		return nil
	}
}
