package fault

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// ErrDegraded tags every transport failure the degrade injector
// manufactures — a flaky NIC dropping a frame mid-op — so tests can tell a
// gray member's flakiness from organic errors.
var ErrDegraded = errors.New("fault: degraded link dropped the op")

// Degrade sites: each draws from its own deterministic counter stream.
const (
	// SiteDegradeStall delays a read on a degraded member's link.
	SiteDegradeStall = "degrade.op.stall"
	// SiteDegradeDrop tears a write on a degraded member's link: a partial
	// frame lands, then the conn dies.
	SiteDegradeDrop = "degrade.op.drop"
)

// DegradeConfig shapes a gray failure: how often ops stall, for how long,
// and how often the link flakily drops one.
type DegradeConfig struct {
	// Seed selects the deterministic decision stream.
	Seed int64
	// StallProb stalls a transport read with this probability.
	StallProb float64
	// StallMin/StallMax bound the injected per-op stall (defaults 5ms/40ms).
	StallMin, StallMax time.Duration
	// DropProb tears a transport write (partial frame, then the conn dies)
	// with this probability — the flaky half of a gray member.
	DropProb float64
}

// Degrade makes one member persistently slow and jittery WITHOUT killing
// it: while active, every connection dialed through Wrap suffers seeded
// per-op stalls and occasional partial-write drops. The member still
// answers pings and still makes progress — the gray-failure mode a
// silence-based phi detector cannot see, and the one the fleet's
// latency-accrual SlowDetector exists to catch. Recover() turns the
// degradation off again so re-admission can be exercised.
type Degrade struct {
	cfg DegradeConfig
	inj *Injector

	mu sync.Mutex
	on bool
}

// NewDegrade builds an inactive degrade injector.
func NewDegrade(cfg DegradeConfig) *Degrade {
	if cfg.StallMin <= 0 {
		cfg.StallMin = 5 * time.Millisecond
	}
	if cfg.StallMax < cfg.StallMin {
		cfg.StallMax = 8 * cfg.StallMin
	}
	return &Degrade{cfg: cfg, inj: New(Config{Seed: cfg.Seed})}
}

// Degrade turns the gray failure on: subsequent ops on wrapped conns stall
// and drop per the config.
func (d *Degrade) Degrade() {
	d.mu.Lock()
	d.on = true
	d.mu.Unlock()
}

// Recover turns the gray failure off; already-dropped conns stay dead
// (recovering hardware does not resurrect torn TCP streams).
func (d *Degrade) Recover() {
	d.mu.Lock()
	d.on = false
	d.mu.Unlock()
}

// Active reports whether the member is currently degraded.
func (d *Degrade) Active() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.on
}

// Events returns every stall/drop fired so far, in firing order.
func (d *Degrade) Events() []Event { return d.inj.Events() }

// Stalls counts the per-op stalls injected so far.
func (d *Degrade) Stalls() int { return d.countKind("stall") }

// Drops counts the flaky partial drops injected so far.
func (d *Degrade) Drops() int { return d.countKind("drop") }

func (d *Degrade) countKind(kind string) int {
	n := 0
	for _, e := range d.inj.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Wrap composes the degradation over a member's dialer (typically already
// wrapped by a Partition): while active, returned conns stall reads and
// occasionally tear writes.
func (d *Degrade) Wrap(dial func() (net.Conn, error)) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c, err := dial()
		if err != nil {
			return nil, err
		}
		return &degradedConn{Conn: c, d: d}, nil
	}
}

// degradedConn injects the per-op stalls and drops. Like fault.Conn, an
// injected stall honors the caller's read deadline — a degraded member
// slows callers down, it must not defeat their timeouts.
type degradedConn struct {
	net.Conn
	d *Degrade

	mu           sync.Mutex
	readDeadline time.Time
}

func (c *degradedConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *degradedConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// Read delivers bytes after a possible injected stall. A stall that would
// cross the read deadline sleeps up to it and returns
// os.ErrDeadlineExceeded, exactly like a peer that answered too late.
func (c *degradedConn) Read(p []byte) (int, error) {
	d := c.d
	if d.Active() && d.inj.fire(SiteDegradeStall, d.cfg.StallProb, "stall") {
		v, _ := d.inj.roll(SiteDegradeStall + ".len")
		stall := d.cfg.StallMin + time.Duration(v*float64(d.cfg.StallMax-d.cfg.StallMin))
		c.mu.Lock()
		deadline := c.readDeadline
		c.mu.Unlock()
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if stall >= remain {
				if remain > 0 {
					time.Sleep(remain)
				}
				return 0, os.ErrDeadlineExceeded
			}
		}
		time.Sleep(stall)
	}
	return c.Conn.Read(p)
}

// Write sends bytes, or flakily drops the op: a torn prefix lands, the
// conn dies, and the caller sees ErrDegraded — the client must redial and
// replay, exactly as with a crashing peer.
func (c *degradedConn) Write(p []byte) (int, error) {
	d := c.d
	if d.Active() && d.inj.fire(SiteDegradeDrop, d.cfg.DropProb, "drop") {
		if len(p) > 1 {
			_, _ = c.Conn.Write(p[:len(p)/2])
		}
		c.Conn.Close()
		return 0, ErrDegraded
	}
	return c.Conn.Write(p)
}
