package fault

import (
	"errors"
	"testing"
)

// A crasher fires exactly once, at exactly the armed (site, n) hit.
func TestCrasherFiresOnceAtArmedHit(t *testing.T) {
	c := NewCrasher(SiteJournalAppendPre, 2)
	hook := c.Hook()
	var fired []int
	for i := 0; i < 6; i++ {
		if err := hook(SiteJournalAppendPre); err != nil {
			if !errors.Is(err, ErrCrash) {
				t.Fatalf("hit %d: %v, want ErrCrash", i, err)
			}
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("crash fired at hits %v, want exactly [2]", fired)
	}
	if !c.Fired() {
		t.Fatal("Fired() = false after the crash")
	}
}

// Other sites never trigger a crasher armed elsewhere, and their hits do not
// advance its counter.
func TestCrasherIgnoresOtherSites(t *testing.T) {
	c := NewCrasher(SiteCheckpointMid, 0)
	hook := c.Hook()
	for i := 0; i < 5; i++ {
		if err := hook(SiteJournalAppendPost); err != nil {
			t.Fatalf("foreign site fired: %v", err)
		}
	}
	if c.Fired() {
		t.Fatal("crasher fired on a foreign site")
	}
	if err := hook(SiteCheckpointMid); !errors.Is(err, ErrCrash) {
		t.Fatalf("armed site hit 0: %v, want ErrCrash", err)
	}
}

// A nil crasher is a valid no-op, so durability code can install hooks
// unconditionally.
func TestNilCrasherNeverFires(t *testing.T) {
	var c *Crasher
	hook := c.Hook()
	for _, site := range CrashSites() {
		if err := hook(site); err != nil {
			t.Fatalf("nil crasher fired at %s: %v", site, err)
		}
	}
	if c.Fired() {
		t.Fatal("nil crasher reports Fired")
	}
}

// The site matrix is stable: harnesses iterate it and bake site names into
// traces.
func TestCrashSiteMatrix(t *testing.T) {
	sites := CrashSites()
	if len(sites) != 9 {
		t.Fatalf("%d crash sites, want 9", len(sites))
	}
	seen := map[string]bool{}
	for _, s := range sites {
		if seen[s] {
			t.Fatalf("duplicate site %q", s)
		}
		seen[s] = true
	}
}
