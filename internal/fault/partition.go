package fault

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// ErrPartitioned tags every failure the partition injector manufactures, so
// tests can tell a severed link from an organic transport error.
var ErrPartitioned = errors.New("fault: network partitioned")

// PartitionMode selects how a cut link misbehaves.
type PartitionMode int

const (
	// PartitionReject fails new dials immediately (an RST-style partition:
	// the router answers, the host is gone). Deterministic, so chaos legs
	// that must be byte-identical across runs use it.
	PartitionReject PartitionMode = iota
	// PartitionDrop blackholes new dials: the connection "opens" but no
	// byte ever arrives, exactly like a firewall silently dropping packets.
	// Callers only escape via read deadlines — the case hedged dialing and
	// ping timeouts exist for.
	PartitionDrop
)

// Partition simulates a network partition around one daemon: while cut, new
// dials are rejected or blackholed (per mode) and every previously tracked
// connection is severed, as a real link failure would tear established TCP
// sessions. Heal restores dialing; severed connections stay dead.
type Partition struct {
	mode PartitionMode

	mu    sync.Mutex
	cut   bool
	cuts  int
	conns map[net.Conn]struct{}
}

// NewPartition builds a healed partition injector.
func NewPartition(mode PartitionMode) *Partition {
	return &Partition{mode: mode, conns: map[net.Conn]struct{}{}}
}

// Cut severs the link: tracked connections close now, and new dials fail
// (reject mode) or blackhole (drop mode) until Heal.
func (p *Partition) Cut() {
	p.mu.Lock()
	if p.cut {
		p.mu.Unlock()
		return
	}
	p.cut = true
	p.cuts++
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = map[net.Conn]struct{}{}
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Heal restores the link for new dials. Connections severed by Cut stay
// dead — surviving a partition means reconnecting, not resuming a torn TCP
// stream.
func (p *Partition) Heal() {
	p.mu.Lock()
	p.cut = false
	p.mu.Unlock()
}

// Severed reports whether the link is currently cut.
func (p *Partition) Severed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cut
}

// Cuts reports how many times the link has been cut.
func (p *Partition) Cuts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts
}

// track registers a connection so a later Cut severs it; returns c for
// chaining. Closed connections are forgotten lazily (the map only grows per
// live dial).
func (p *Partition) track(c net.Conn) net.Conn {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return c
}

// Forget stops tracking a connection the caller closed itself.
func (p *Partition) Forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// Dial wraps a transport dialer with the partition: healthy dials are
// tracked (so Cut severs them); cut dials fail per the mode.
func (p *Partition) Dial(dial func() net.Conn) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		p.mu.Lock()
		cut, mode := p.cut, p.mode
		p.mu.Unlock()
		if !cut {
			return p.track(dial()), nil
		}
		if mode == PartitionReject {
			return nil, ErrPartitioned
		}
		return newBlackholeConn(), nil
	}
}

// blackholeConn is a "connected" transport across a drop-mode partition: it
// swallows writes and never delivers a byte. Reads block until the read
// deadline expires (os.ErrDeadlineExceeded, like any slow peer) or the conn
// is closed; without a deadline they block until Close.
type blackholeConn struct {
	mu       sync.Mutex
	deadline time.Time
	closed   chan struct{}
	once     sync.Once
}

func newBlackholeConn() *blackholeConn {
	return &blackholeConn{closed: make(chan struct{})}
}

func (b *blackholeConn) Read(p []byte) (int, error) {
	for {
		b.mu.Lock()
		deadline := b.deadline
		b.mu.Unlock()
		var wait time.Duration
		if !deadline.IsZero() {
			wait = time.Until(deadline)
			if wait <= 0 {
				return 0, os.ErrDeadlineExceeded
			}
		}
		// Poll coarsely so deadline updates land without a wakeup channel.
		step := 5 * time.Millisecond
		if wait > 0 && wait < step {
			step = wait
		}
		select {
		case <-b.closed:
			return 0, ErrPartitioned
		case <-time.After(step):
		}
	}
}

func (b *blackholeConn) Write(p []byte) (int, error) {
	select {
	case <-b.closed:
		return 0, ErrPartitioned
	default:
		return len(p), nil // swallowed by the void
	}
}

func (b *blackholeConn) Close() error {
	b.once.Do(func() { close(b.closed) })
	return nil
}

func (b *blackholeConn) LocalAddr() net.Addr  { return blackholeAddr{} }
func (b *blackholeConn) RemoteAddr() net.Addr { return blackholeAddr{} }

func (b *blackholeConn) SetDeadline(t time.Time) error { return b.SetReadDeadline(t) }

func (b *blackholeConn) SetReadDeadline(t time.Time) error {
	b.mu.Lock()
	b.deadline = t
	b.mu.Unlock()
	return nil
}

func (b *blackholeConn) SetWriteDeadline(time.Time) error { return nil }

type blackholeAddr struct{}

func (blackholeAddr) Network() string { return "blackhole" }
func (blackholeAddr) String() string  { return "blackhole" }
