package fault

import (
	"errors"
	"net"
	"os"
	"sync"
	"time"
)

// ErrInjected tags every transport error the injector manufactures, so tests
// can tell injected failures from organic ones.
var ErrInjected = errors.New("fault: injected transport failure")

// Conn wraps a net.Conn with injected transport faults: reads may be
// delayed, writes may be replaced by a connection reset or a torn
// (truncated) frame followed by a reset. It models both a flaky link and a
// client that crashes mid-command.
type Conn struct {
	net.Conn
	inj *Injector

	mu           sync.Mutex
	readDeadline time.Time
}

// WrapConn attaches the injector's transport faults to a connection.
func (i *Injector) WrapConn(c net.Conn) *Conn {
	return &Conn{Conn: c, inj: i}
}

// SetReadDeadline records the deadline so injected delays honor it, then
// forwards to the wrapped connection.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetDeadline sets both read and write deadlines; the read half is recorded
// for delay capping like SetReadDeadline.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// Read delivers bytes, possibly after an injected delay. The delay respects
// any read deadline: sleeping never overshoots it, and a delay that would
// cross it returns os.ErrDeadlineExceeded exactly like a slow peer would —
// before the fix, an injected delay could stall a Read far past the
// deadline the caller set, defeating client-side timeouts.
func (c *Conn) Read(p []byte) (int, error) {
	if c.inj.fire(SiteReadDelay, c.inj.cfg.ReadDelayProb, "delay") {
		v, _ := c.inj.roll(SiteReadDelay + ".len")
		delay := time.Duration(v * float64(c.inj.cfg.DelayMax))
		c.mu.Lock()
		deadline := c.readDeadline
		c.mu.Unlock()
		if !deadline.IsZero() {
			remain := time.Until(deadline)
			if delay >= remain {
				if remain > 0 {
					time.Sleep(remain)
				}
				return 0, os.ErrDeadlineExceeded
			}
		}
		time.Sleep(delay)
	}
	return c.Conn.Read(p)
}

// Write sends bytes, or injects a reset / torn write. After a fault the
// underlying connection is closed: every later operation fails, exactly like
// a peer whose process died.
func (c *Conn) Write(p []byte) (int, error) {
	if c.inj.fire(SiteWriteReset, c.inj.cfg.WriteResetProb, "reset") {
		c.Conn.Close()
		return 0, ErrInjected
	}
	if c.inj.fire(SiteWriteTruncate, c.inj.cfg.WriteTruncateProb, "truncate") {
		if len(p) > 1 {
			_, _ = c.Conn.Write(p[:len(p)/2])
		}
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Write(p)
}
