package fault

import (
	"errors"
	"net"
	"time"
)

// ErrInjected tags every transport error the injector manufactures, so tests
// can tell injected failures from organic ones.
var ErrInjected = errors.New("fault: injected transport failure")

// Conn wraps a net.Conn with injected transport faults: reads may be
// delayed, writes may be replaced by a connection reset or a torn
// (truncated) frame followed by a reset. It models both a flaky link and a
// client that crashes mid-command.
type Conn struct {
	net.Conn
	inj *Injector
}

// WrapConn attaches the injector's transport faults to a connection.
func (i *Injector) WrapConn(c net.Conn) *Conn {
	return &Conn{Conn: c, inj: i}
}

// Read delivers bytes, possibly after an injected delay.
func (c *Conn) Read(p []byte) (int, error) {
	if c.inj.fire(SiteReadDelay, c.inj.cfg.ReadDelayProb, "delay") {
		v, _ := c.inj.roll(SiteReadDelay + ".len")
		time.Sleep(time.Duration(v * float64(c.inj.cfg.DelayMax)))
	}
	return c.Conn.Read(p)
}

// Write sends bytes, or injects a reset / torn write. After a fault the
// underlying connection is closed: every later operation fails, exactly like
// a peer whose process died.
func (c *Conn) Write(p []byte) (int, error) {
	if c.inj.fire(SiteWriteReset, c.inj.cfg.WriteResetProb, "reset") {
		c.Conn.Close()
		return 0, ErrInjected
	}
	if c.inj.fire(SiteWriteTruncate, c.inj.cfg.WriteTruncateProb, "truncate") {
		if len(p) > 1 {
			_, _ = c.Conn.Write(p[:len(p)/2])
		}
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Write(p)
}
