// Package fault is Slate's seeded fault-injection framework: a deterministic
// injector that perturbs the client/daemon stack at its three trust
// boundaries — the transport (delayed, reset, or truncated frames), device
// memory allocation (spurious OOM), and runtime compilation (transient
// compiler failures). Every decision is a pure function of (seed, site,
// per-site counter), so a given seed reproduces the exact same failure
// sequence on every run — the property chaos tests and the
// `slatebench -exp faults` driver rely on to make crash reports replayable.
package fault

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Sites name the injection points. Each site draws from its own counter
// stream, so adding faults at one site never shifts the decisions at
// another.
const (
	SiteReadDelay     = "conn.read.delay"
	SiteWriteReset    = "conn.write.reset"
	SiteWriteTruncate = "conn.write.truncate"
	SiteAlloc         = "registry.alloc"
	SiteCompile       = "nvrtc.compile"
)

// Config sets per-site fault probabilities in [0,1]. Zero values disable a
// site entirely.
type Config struct {
	// Seed selects the deterministic decision stream.
	Seed int64
	// ReadDelayProb delays a transport read by up to DelayMax.
	ReadDelayProb float64
	// DelayMax bounds injected read delays (default 2ms).
	DelayMax time.Duration
	// WriteResetProb resets the connection instead of writing a frame.
	WriteResetProb float64
	// WriteTruncateProb writes half a frame and then resets — the torn-write
	// case a crashing client produces.
	WriteTruncateProb float64
	// AllocFailProb makes BufferRegistry.Create fail with a spurious OOM.
	AllocFailProb float64
	// CompileFailProb makes the runtime compiler fail transiently.
	CompileFailProb float64
}

// Event is one fired fault: which site, the site-local decision index, and
// what happened.
type Event struct {
	Site string
	N    uint64
	Kind string
}

func (e Event) String() string { return fmt.Sprintf("%s#%d:%s", e.Site, e.N, e.Kind) }

// Injector draws deterministic fault decisions and records every fault it
// fires. Safe for concurrent use; determinism of the *sequence* additionally
// requires that calls to each site arrive in a deterministic order (e.g. a
// single-threaded chaos script).
type Injector struct {
	cfg Config

	mu       sync.Mutex
	counters map[string]uint64
	events   []Event
}

// New builds an injector for the given config.
func New(cfg Config) *Injector {
	if cfg.DelayMax <= 0 {
		cfg.DelayMax = 2 * time.Millisecond
	}
	return &Injector{cfg: cfg, counters: map[string]uint64{}}
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer whose
// output stream for sequential inputs passes statistical tests, used here so
// decision n at a site is a pure function of (seed, site, n).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func siteHash(site string) uint64 {
	// FNV-1a over the site name; stable across runs and Go versions.
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// roll returns the site's next decision value in [0,1) and its index.
func (i *Injector) roll(site string) (float64, uint64) {
	i.mu.Lock()
	n := i.counters[site]
	i.counters[site] = n + 1
	i.mu.Unlock()
	bits := splitmix64(uint64(i.cfg.Seed) ^ siteHash(site) ^ (n * 0x2545f4914f6cdd1d))
	return float64(bits>>11) / (1 << 53), n
}

// fire decides whether site's next event fires at probability p, logging it
// as kind when it does.
func (i *Injector) fire(site string, p float64, kind string) bool {
	if p <= 0 {
		return false
	}
	v, n := i.roll(site)
	if v >= p {
		return false
	}
	i.mu.Lock()
	i.events = append(i.events, Event{Site: site, N: n, Kind: kind})
	i.mu.Unlock()
	return true
}

// Events returns a copy of every fault fired so far, in firing order.
func (i *Injector) Events() []Event {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Event(nil), i.events...)
}

// Trace renders the fired-fault sequence as one line per event — the replay
// fingerprint two same-seed runs must agree on.
func (i *Injector) Trace() string {
	evs := i.Events()
	var b strings.Builder
	for _, e := range evs {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// AllocHook returns the registry hook: it fails allocation with a spurious
// OOM at the configured probability. Wire it to
// ipc.BufferRegistry.AllocHook.
func (i *Injector) AllocHook() func(size int64) error {
	return func(size int64) error {
		if i.fire(SiteAlloc, i.cfg.AllocFailProb, "oom") {
			return fmt.Errorf("fault: injected device OOM for %d-byte allocation", size)
		}
		return nil
	}
}

// CompileHook returns the compiler hook: it fails compilation transiently at
// the configured probability. Wire it to nvrtc.Compiler.FailHook.
func (i *Injector) CompileHook() func(src string) error {
	return func(string) error {
		if i.fire(SiteCompile, i.cfg.CompileFailProb, "compile-fail") {
			return fmt.Errorf("fault: injected transient compiler failure")
		}
		return nil
	}
}
