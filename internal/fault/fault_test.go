package fault

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// The same seed must produce the same decision stream per site; different
// seeds must diverge.
func TestDeterministicDecisions(t *testing.T) {
	cfg := Config{Seed: 42, WriteResetProb: 0.3, AllocFailProb: 0.2, CompileFailProb: 0.5}
	draw := func(seed int64) []Event {
		i := New(Config{Seed: seed, WriteResetProb: cfg.WriteResetProb,
			AllocFailProb: cfg.AllocFailProb, CompileFailProb: cfg.CompileFailProb})
		alloc, comp := i.AllocHook(), i.CompileHook()
		for n := 0; n < 200; n++ {
			_ = alloc(64)
			_ = comp("src")
			i.fire(SiteWriteReset, i.cfg.WriteResetProb, "reset")
		}
		return i.Events()
	}
	a, b := draw(42), draw(42)
	if len(a) == 0 {
		t.Fatal("no faults fired at these probabilities")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed diverged: %d vs %d events", len(a), len(b))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("event %d differs: %v vs %v", k, a[k], b[k])
		}
	}
	c := draw(43)
	if len(c) == len(a) {
		same := true
		for k := range a {
			if a[k] != c[k] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical fault sequences")
		}
	}
}

// Sites draw from independent streams: enabling a second site must not
// change the first site's decisions.
func TestSiteIsolation(t *testing.T) {
	seq := func(cfg Config) []Event {
		i := New(cfg)
		alloc := i.AllocHook()
		comp := i.CompileHook()
		for n := 0; n < 100; n++ {
			_ = alloc(1)
			_ = comp("s")
		}
		var allocs []Event
		for _, e := range i.Events() {
			if e.Site == SiteAlloc {
				allocs = append(allocs, e)
			}
		}
		return allocs
	}
	only := seq(Config{Seed: 7, AllocFailProb: 0.3})
	both := seq(Config{Seed: 7, AllocFailProb: 0.3, CompileFailProb: 0.9})
	if len(only) != len(both) {
		t.Fatalf("compile faults shifted alloc decisions: %d vs %d", len(only), len(both))
	}
	for k := range only {
		if only[k] != both[k] {
			t.Fatalf("alloc event %d shifted: %v vs %v", k, only[k], both[k])
		}
	}
}

// A reset-injected write closes the transport so the peer observes EOF, the
// same signature as a crashed client.
func TestConnResetFault(t *testing.T) {
	i := New(Config{Seed: 1, WriteResetProb: 1})
	a, b := net.Pipe()
	fc := i.WrapConn(a)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := b.Read(buf)
		done <- err
	}()
	if _, err := fc.Write([]byte("hello")); err == nil {
		t.Fatal("reset-injected write succeeded")
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("peer read succeeded after injected reset")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never observed the reset")
	}
	if evs := i.Events(); len(evs) != 1 || evs[0].Kind != "reset" {
		t.Fatalf("events = %v", evs)
	}
}

// A truncate-injected write delivers a torn frame prefix and then closes.
func TestConnTruncateFault(t *testing.T) {
	i := New(Config{Seed: 1, WriteTruncateProb: 1})
	a, b := net.Pipe()
	fc := i.WrapConn(a)
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, _ := b.Read(buf)
		got <- buf[:n]
	}()
	payload := []byte("0123456789abcdef")
	if _, err := fc.Write(payload); err == nil {
		t.Fatal("truncate-injected write reported success")
	}
	select {
	case torn := <-got:
		if len(torn) == 0 || len(torn) >= len(payload) {
			t.Fatalf("torn frame length %d of %d", len(torn), len(payload))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never saw the torn prefix")
	}
}

// An injected read delay must honor the caller's read deadline: the Read
// returns os.ErrDeadlineExceeded at (or before) the deadline instead of
// sleeping out the full injected delay. Before the fix, a delay drawn near
// DelayMax stalled the Read far past the deadline, defeating the client's
// per-operation timeout.
func TestReadDelayHonorsDeadline(t *testing.T) {
	i := New(Config{Seed: 1, ReadDelayProb: 1, DelayMax: 10 * time.Second})
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := i.WrapConn(a)
	if err := fc.SetReadDeadline(time.Now().Add(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := fc.Read(make([]byte, 8))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read succeeded with nothing to read")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("injected delay ignored the deadline: read blocked %v", elapsed)
	}
}

// A delay that fits inside the deadline still delivers the bytes.
func TestReadDelayWithinDeadlineDelivers(t *testing.T) {
	i := New(Config{Seed: 2, ReadDelayProb: 1, DelayMax: time.Millisecond})
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	fc := i.WrapConn(a)
	if err := fc.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = b.Write([]byte("ping")) }()
	buf := make([]byte, 16)
	n, err := fc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "ping" {
		t.Fatalf("read %q, want ping", buf[:n])
	}
}

// Zero-probability sites never fire and never log.
func TestDisabledSitesAreSilent(t *testing.T) {
	i := New(Config{Seed: 9})
	alloc, comp := i.AllocHook(), i.CompileHook()
	for n := 0; n < 1000; n++ {
		if err := alloc(8); err != nil {
			t.Fatal(err)
		}
		if err := comp("x"); err != nil {
			t.Fatal(err)
		}
	}
	if len(i.Events()) != 0 {
		t.Fatalf("disabled injector fired %d events", len(i.Events()))
	}
	if i.Trace() != "" {
		t.Fatal("trace not empty")
	}
}
