// Package run drives whole applications (host setup, PCIe transfers, a
// kernel looped to the paper's ~30-second methodology, result readback)
// through a pluggable scheduling backend on the shared virtual clock. The
// CUDA, MPS, and Slate backends differ only in per-launch overheads and in
// how a kernel reaches the GPU; everything else — the Fig. 6 application
// anatomy — is common and lives here.
package run

import (
	"fmt"
	"sort"

	"slate/internal/engine"
	"slate/internal/kern"
	"slate/internal/vtime"
	"slate/workloads"
)

// Job is one application instance to run.
type Job struct {
	App *workloads.App
	// Reps is the kernel launch count (the ~30s loop of §V-A3).
	Reps int
	// StartDelaySec delays the application's arrival (0 = starts at time
	// zero). Cloud-trace experiments use it for staggered arrivals.
	StartDelaySec float64
	// KernelAt, if non-nil, supplies the kernel for each rep — iterative
	// applications like Gaussian elimination launch a different (shrinking)
	// kernel every step. Nil launches App.Kernel every rep.
	KernelAt func(rep int) *kern.Spec
}

// kernelFor resolves the kernel to launch for a rep.
func (j Job) kernelFor(rep int) *kern.Spec {
	if j.KernelAt != nil {
		return j.KernelAt(rep)
	}
	return j.App.Kernel
}

// Result is one application's measured execution.
type Result struct {
	Code  string
	Start vtime.Time
	End   vtime.Time
	// KernelSec is the total in-kernel execution time.
	KernelSec float64
	// HostSec covers setup, transfers, and launch API overhead.
	HostSec float64
	// CommSec is client-daemon communication (MPS and Slate).
	CommSec float64
	// InjectSec is code injection + runtime compilation (Slate).
	InjectSec float64
	// Launches counts completed kernel executions.
	Launches int
	// Aggregated device counters over all launches (Table IV inputs).
	FLOPs, L2Bytes, DRAMBytes, Instr float64
	Atomics                          int64
}

// AppSec returns the application's total execution time in seconds.
func (r Result) AppSec() float64 { return r.End.Sub(r.Start).Seconds() }

// Overheads describes a backend's host-side costs for one kernel launch.
type Overheads struct {
	// HostSec is plain API cost (counted as host time).
	HostSec float64
	// CommSec is client-daemon communication.
	CommSec float64
	// InjectSec is injection/compilation (first launch of a kernel).
	InjectSec float64
}

// Backend abstracts how kernels reach the GPU.
type Backend interface {
	// Name identifies the scheduler ("cuda", "mps", "slate").
	Name() string
	// LaunchOverheads returns the host-side costs of launching spec for
	// the rep-th time (rep starts at 0).
	LaunchOverheads(spec *kern.Spec, rep int) Overheads
	// Submit hands the kernel to the device; done fires at completion.
	Submit(spec *kern.Spec, done func(vtime.Time, engine.Metrics)) error
	// TransferSeconds returns the host-device transfer time for n bytes.
	TransferSeconds(n int64) float64
}

// Driver executes jobs against a backend.
type Driver struct {
	Clock   *vtime.Clock
	Backend Backend

	pcie FIFO
}

// NewDriver builds a driver on the backend's clock.
func NewDriver(clock *vtime.Clock, b Backend) *Driver {
	return &Driver{Clock: clock, Backend: b}
}

// Run launches every job at time zero (concurrent processes), drives the
// clock to completion, and returns per-app results in job order.
func (d *Driver) Run(jobs []Job) ([]Result, error) {
	collect := d.Start(jobs)
	if n := d.Clock.Run(50_000_000); n >= 50_000_000 {
		return nil, fmt.Errorf("run: simulation did not converge")
	}
	return collect()
}

// Start schedules every job on the driver's clock without firing a single
// event, and returns the collector that finalizes results once the caller
// has driven the clock to quiescence. The split lets several drivers — each
// on its own clock — run as shards of a vtime.ShardedClock, with one Run
// call on the sharded clock driving them all.
func (d *Driver) Start(jobs []Job) func() ([]Result, error) {
	results := make([]Result, len(jobs))
	var firstErr error
	remaining := len(jobs)
	for i, job := range jobs {
		i, job := i, job
		start := func(vtime.Time) {
			results[i] = Result{Code: job.App.Code, Start: d.Clock.Now()}
			d.runApp(job, &results[i], func(err error) {
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("run: app %s: %w", job.App.Code, err)
				}
				remaining--
			})
		}
		if job.StartDelaySec > 0 {
			results[i] = Result{Code: job.App.Code}
			d.Clock.After(vtime.FromSeconds(job.StartDelaySec), start)
		} else {
			// Defer to the first event so Start itself fires nothing.
			d.Clock.After(0, start)
		}
	}
	return func() ([]Result, error) {
		if firstErr != nil {
			return nil, firstErr
		}
		if remaining != 0 {
			return nil, fmt.Errorf("run: %d applications never completed", remaining)
		}
		return results, nil
	}
}

// runApp walks one application's state machine: setup → H2D → reps ×
// (launch → kernel) → D2H.
func (d *Driver) runApp(job Job, res *Result, done func(error)) {
	setup := vtime.FromSeconds(job.App.HostSetupSeconds)
	res.HostSec += job.App.HostSetupSeconds
	d.Clock.After(setup, func(now vtime.Time) {
		d.transfer(job.App.InputBytes, res, func(now vtime.Time) {
			d.loop(job, res, 0, func(err error) {
				if err != nil {
					done(err)
					return
				}
				d.transfer(job.App.OutputBytes, res, func(now vtime.Time) {
					res.End = now
					done(nil)
				})
			})
		})
	})
}

// transfer serializes host-device copies on the shared PCIe link. Zero-byte
// transfers are elided entirely.
func (d *Driver) transfer(bytes int64, res *Result, next func(vtime.Time)) {
	if bytes <= 0 {
		next(d.Clock.Now())
		return
	}
	d.pcie.Acquire(d.Clock, func(now vtime.Time) {
		sec := d.Backend.TransferSeconds(bytes)
		res.HostSec += sec
		d.Clock.After(vtime.FromSeconds(sec), func(t vtime.Time) {
			d.pcie.Release(d.Clock)
			next(t)
		})
	})
}

// loop issues rep kernel launches back to back, synchronizing after each as
// the benchmarks do.
func (d *Driver) loop(job Job, res *Result, rep int, done func(error)) {
	if rep >= job.Reps {
		done(nil)
		return
	}
	spec := job.kernelFor(rep)
	ov := d.Backend.LaunchOverheads(spec, rep)
	res.HostSec += ov.HostSec
	res.CommSec += ov.CommSec
	res.InjectSec += ov.InjectSec
	delay := vtime.FromSeconds(ov.HostSec + ov.CommSec + ov.InjectSec)
	d.Clock.After(delay, func(vtime.Time) {
		err := d.Backend.Submit(spec, func(at vtime.Time, m engine.Metrics) {
			res.KernelSec += m.Duration().Seconds()
			res.Launches++
			res.FLOPs += m.FLOPs
			res.L2Bytes += m.L2Bytes
			res.DRAMBytes += m.DRAMBytes
			res.Instr += m.Instr
			res.Atomics += m.Atomics
			d.loop(job, res, rep+1, done)
		})
		if err != nil {
			done(err)
		}
	})
}

// FIFO is a strict-FIFO mutex on virtual time, used for the PCIe link and
// for vanilla CUDA's one-kernel-at-a-time device token.
type FIFO struct {
	busy    bool
	waiters []func(vtime.Time)
}

// Acquire runs fn once the resource is free, in request order.
func (f *FIFO) Acquire(clock *vtime.Clock, fn func(vtime.Time)) {
	if !f.busy {
		f.busy = true
		fn(clock.Now())
		return
	}
	f.waiters = append(f.waiters, fn)
}

// Release frees the resource, handing it to the next waiter at the current
// instant (without recursing).
func (f *FIFO) Release(clock *vtime.Clock) {
	if len(f.waiters) == 0 {
		f.busy = false
		return
	}
	next := f.waiters[0]
	f.waiters = f.waiters[1:]
	clock.After(0, next)
}

// Reps30s returns the rep count that makes the kernel's solo loop take
// about target seconds — the paper's data collection methodology (§V-A3).
func Reps30s(soloKernelSec, target float64) int {
	if soloKernelSec <= 0 {
		return 1
	}
	n := int(target / soloKernelSec)
	if n < 1 {
		n = 1
	}
	return n
}

// SortByEnd orders results by completion time (stable on code), a helper
// for reports.
func SortByEnd(rs []Result) {
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].End < rs[j].End })
}
