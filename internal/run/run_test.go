package run

import (
	"fmt"
	"testing"

	"slate/internal/engine"
	"slate/internal/kern"
	"slate/internal/vtime"
	"slate/workloads"
)

// fakeBackend executes kernels in a fixed virtual duration and records
// launches.
type fakeBackend struct {
	clock     *vtime.Clock
	kernelSec float64
	overheads Overheads
	launches  int
	transfers []int64
}

func (f *fakeBackend) Name() string { return "fake" }

func (f *fakeBackend) LaunchOverheads(*kern.Spec, int) Overheads { return f.overheads }

func (f *fakeBackend) Submit(spec *kern.Spec, done func(vtime.Time, engine.Metrics)) error {
	f.launches++
	start := f.clock.Now()
	f.clock.After(vtime.FromSeconds(f.kernelSec), func(at vtime.Time) {
		m := engine.Metrics{Launched: start, Completed: at}
		done(at, m)
	})
	return nil
}

func (f *fakeBackend) TransferSeconds(n int64) float64 {
	f.transfers = append(f.transfers, n)
	return float64(n) / 10e9
}

func app(code string, in, out int64, setup float64) *workloads.App {
	return &workloads.App{
		Code: code, FullName: code,
		Kernel: &kern.Spec{
			Name: code, Grid: kern.D1(10), BlockDim: kern.D1(64),
			FLOPsPerBlock: 1, InstrPerBlock: 1, L2BytesPerBlock: 1, ComputeEff: 0.5,
		},
		InputBytes: in, OutputBytes: out, HostSetupSeconds: setup,
	}
}

func TestDriverAppAnatomy(t *testing.T) {
	clk := vtime.NewClock()
	fb := &fakeBackend{clock: clk, kernelSec: 0.010, overheads: Overheads{HostSec: 0.001, CommSec: 0.002, InjectSec: 0.003}}
	d := NewDriver(clk, fb)
	rs, err := d.Run([]Job{{App: app("A", 10e9, 20e9, 0.5), Reps: 3}})
	if err != nil {
		t.Fatal(err)
	}
	r := rs[0]
	if r.Launches != 3 || fb.launches != 3 {
		t.Fatalf("launches = %d/%d, want 3", r.Launches, fb.launches)
	}
	// Host = setup + transfers (1s + 2s) + 3 × 1ms API.
	wantHost := 0.5 + 1.0 + 2.0 + 3*0.001
	if diff := r.HostSec - wantHost; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("HostSec = %v, want %v", r.HostSec, wantHost)
	}
	if diff := r.CommSec - 3*0.002; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("CommSec = %v, want 0.006", r.CommSec)
	}
	if diff := r.InjectSec - 3*0.003; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("InjectSec = %v, want 0.009", r.InjectSec)
	}
	if diff := r.KernelSec - 3*0.010; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("KernelSec = %v, want 0.030", r.KernelSec)
	}
	// App time = everything, serialized in this single-app case.
	want := wantHost + 0.006 + 0.009 + 0.030
	if diff := r.AppSec() - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("AppSec = %v, want %v", r.AppSec(), want)
	}
	if len(fb.transfers) != 2 || fb.transfers[0] != 10e9 || fb.transfers[1] != 20e9 {
		t.Fatalf("transfers = %v", fb.transfers)
	}
}

func TestDriverPCIeSerializes(t *testing.T) {
	clk := vtime.NewClock()
	fb := &fakeBackend{clock: clk, kernelSec: 0.001}
	d := NewDriver(clk, fb)
	// Two apps with zero setup and 10 GB inputs: the second's H2D must wait
	// for the first (1 s each on the 10 GB/s fake link).
	rs, err := d.Run([]Job{
		{App: app("A", 10e9, 0, 0), Reps: 1},
		{App: app("B", 10e9, 0, 0), Reps: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// B's kernel cannot start before ~2 s (two serialized transfers).
	if rs[1].End.Sub(0).Seconds() < 2.0 {
		t.Fatalf("B finished at %v; PCIe transfers did not serialize", rs[1].End)
	}
	// Output transfers of size 0 should not be charged.
	if rs[0].AppSec() > 1.1 {
		t.Fatalf("A took %v, want ≈1s", rs[0].AppSec())
	}
}

type errBackend struct{ fakeBackend }

func (e *errBackend) Submit(*kern.Spec, func(vtime.Time, engine.Metrics)) error {
	return fmt.Errorf("boom")
}

func TestDriverPropagatesSubmitError(t *testing.T) {
	clk := vtime.NewClock()
	eb := &errBackend{fakeBackend{clock: clk}}
	d := NewDriver(clk, eb)
	if _, err := d.Run([]Job{{App: app("A", 1, 1, 0.01), Reps: 1}}); err == nil {
		t.Fatal("submit error swallowed")
	}
}

func TestReps30s(t *testing.T) {
	if got := Reps30s(0.010, 30); got != 3000 {
		t.Fatalf("Reps30s(10ms, 30s) = %d, want 3000", got)
	}
	if got := Reps30s(100, 30); got != 1 {
		t.Fatalf("long kernels still run once, got %d", got)
	}
	if got := Reps30s(0, 30); got != 1 {
		t.Fatalf("zero solo time should clamp to 1, got %d", got)
	}
}

func TestFIFOOrdering(t *testing.T) {
	clk := vtime.NewClock()
	var f FIFO
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		f.Acquire(clk, func(vtime.Time) {
			order = append(order, i)
			clk.After(10, func(vtime.Time) { f.Release(clk) })
		})
	}
	clk.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestSortByEnd(t *testing.T) {
	rs := []Result{{Code: "b", End: 20}, {Code: "a", End: 10}, {Code: "c", End: 30}}
	SortByEnd(rs)
	if rs[0].Code != "a" || rs[2].Code != "c" {
		t.Fatalf("sorted = %v", rs)
	}
}

func TestDriverAccumulatesDeviceCounters(t *testing.T) {
	clk := vtime.NewClock()
	fb := &counterBackend{clock: clk}
	d := NewDriver(clk, fb)
	rs, err := d.Run([]Job{{App: app("A", 1, 1, 0.001), Reps: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].FLOPs != 4*100 || rs[0].L2Bytes != 4*200 || rs[0].Atomics != 4*7 {
		t.Fatalf("counters = %+v", rs[0])
	}
}

type counterBackend struct {
	clock *vtime.Clock
}

func (c *counterBackend) Name() string                              { return "counter" }
func (c *counterBackend) LaunchOverheads(*kern.Spec, int) Overheads { return Overheads{} }
func (c *counterBackend) TransferSeconds(int64) float64             { return 0 }
func (c *counterBackend) Submit(spec *kern.Spec, done func(vtime.Time, engine.Metrics)) error {
	c.clock.After(10, func(at vtime.Time) {
		done(at, engine.Metrics{Completed: at, FLOPs: 100, L2Bytes: 200, Atomics: 7})
	})
	return nil
}
