package traces

import (
	"fmt"
	"testing"
)

// benchPatterns are model-build-scale instances of every pattern shape the
// workloads use, sized so an uncapped assembly is ~1M accesses — the
// TraceModel default.
func benchPatterns() map[string]BlockPattern {
	return map[string]BlockPattern{
		"streaming": Streaming{Blocks: 2048, BytesPerBlock: 32 << 10, LineBytes: 64},
		"rowsweep": RowSweep{
			Blocks: 2048, PivotBytes: 4096, SliceBytes: 28 << 10,
			SliceOverlap: 8 << 10, LineBytes: 64, RowBase: 1 << 22,
		},
		"tiled":  Tiled{GridX: 32, GridY: 32, PanelBytes: 32 << 10, LineBytes: 64, BBase: 1 << 30},
		"random": Random{Blocks: 2048, BytesPerBlock: 28 << 10, TableBytes: 1 << 20, TableReads: 64, LineBytes: 64, TableBase: 1 << 30},
	}
}

// BenchmarkAssemble measures trace assembly (the other half of a model
// build beside the MRC) with allocation counts: the preallocated queue,
// stream, and output buffers should keep allocs flat in trace length.
func BenchmarkAssemble(b *testing.B) {
	for _, order := range []struct {
		name string
		cfg  AssembleConfig
	}{
		{"hardware", AssembleConfig{Order: HardwareOrder, Workers: 480, Chunk: 8, Seed: 1, MaxAccesses: 1_000_000}},
		{"slate", AssembleConfig{Order: SlateOrder, Workers: 480, TaskSize: 10, Chunk: 8, Seed: 1, MaxAccesses: 1_000_000}},
	} {
		for name, p := range benchPatterns() {
			b.Run(fmt.Sprintf("%s/%s", order.name, name), func(b *testing.B) {
				b.ReportAllocs()
				var sink int
				for i := 0; i < b.N; i++ {
					sink = len(Assemble(p, order.cfg))
				}
				_ = sink
			})
		}
	}
}
