package traces

import (
	"sort"
	"testing"
	"testing/quick"

	"slate/internal/cache"
)

func l2() cache.Config { return cache.Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 16} }

func TestStreamingCoversDisjointRanges(t *testing.T) {
	p := Streaming{Blocks: 8, BytesPerBlock: 512, LineBytes: 64}
	seen := map[uint64]int{}
	for b := 0; b < p.Blocks; b++ {
		for _, a := range p.AppendBlock(nil, b) {
			seen[a]++
		}
	}
	if len(seen) != 8*512/64 {
		t.Fatalf("distinct lines = %d, want %d", len(seen), 8*512/64)
	}
	for a, n := range seen {
		if n != 1 {
			t.Fatalf("line %#x touched %d times across blocks; streaming should be private", a, n)
		}
	}
}

func TestRowSweepSharesPivot(t *testing.T) {
	p := RowSweep{Blocks: 4, PivotBytes: 256, SliceBytes: 256, LineBytes: 64, RowBase: 1 << 20}
	counts := map[uint64]int{}
	for b := 0; b < p.Blocks; b++ {
		for _, a := range p.AppendBlock(nil, b) {
			counts[a]++
		}
	}
	pivotLines := 0
	for a, n := range counts {
		if a < 1<<20 {
			pivotLines++
			if n != p.Blocks {
				t.Fatalf("pivot line %#x touched %d times, want %d", a, n, p.Blocks)
			}
		}
	}
	if pivotLines != 256/64 {
		t.Fatalf("pivot lines = %d, want 4", pivotLines)
	}
}

func TestTiledPanelReuse(t *testing.T) {
	p := Tiled{GridX: 4, GridY: 4, PanelBytes: 256, LineBytes: 64, BBase: 1 << 30}
	// Blocks 0..3 (row 0) must share the same A panel.
	aLines := func(b int) []uint64 {
		var out []uint64
		for _, a := range p.AppendBlock(nil, b) {
			if a < 1<<30 {
				out = append(out, a)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	ref := aLines(0)
	for b := 1; b < 4; b++ {
		got := aLines(b)
		if len(got) != len(ref) {
			t.Fatalf("block %d A-panel size mismatch", b)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("block %d reads different A panel", b)
			}
		}
	}
	// Block 4 (row 1) must read a different A panel.
	if aLines(4)[0] == ref[0] {
		t.Fatal("row 1 shares row 0's A panel")
	}
}

func TestRandomDeterministicPerBlock(t *testing.T) {
	p := Random{Blocks: 4, BytesPerBlock: 128, TableBytes: 4096, TableReads: 8, LineBytes: 64, Seed: 9}
	a := p.AppendBlock(nil, 2)
	b := p.AppendBlock(nil, 2)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("block trace not deterministic")
		}
	}
}

func TestAssemblePreservesMultiset(t *testing.T) {
	p := RowSweep{Blocks: 32, PivotBytes: 128, SliceBytes: 256, LineBytes: 64, RowBase: 1 << 20}
	want := map[uint64]int{}
	for b := 0; b < p.Blocks; b++ {
		for _, a := range p.AppendBlock(nil, b) {
			want[a]++
		}
	}
	for _, ord := range []Order{HardwareOrder, SlateOrder} {
		got := map[uint64]int{}
		tr := Assemble(p, AssembleConfig{Order: ord, Workers: 4, TaskSize: 2, Chunk: 4, Seed: 1})
		for _, a := range tr {
			got[a]++
		}
		if len(got) != len(want) {
			t.Fatalf("order %v: distinct lines %d, want %d", ord, len(got), len(want))
		}
		for a, n := range want {
			if got[a] != n {
				t.Fatalf("order %v: line %#x count %d, want %d", ord, a, got[a], n)
			}
		}
	}
}

func TestAssembleMaxAccessesCaps(t *testing.T) {
	// The cap samples whole blocks (composition must stay representative),
	// so the result is the largest block-multiple under the cap: 12 blocks
	// × 8 accesses = 96.
	p := Streaming{Blocks: 64, BytesPerBlock: 512, LineBytes: 64}
	tr := Assemble(p, AssembleConfig{Order: SlateOrder, Workers: 4, MaxAccesses: 100, Seed: 3})
	if len(tr) != 96 {
		t.Fatalf("capped trace length = %d, want 96 (12 whole blocks)", len(tr))
	}
	// A cap below one block still emits one whole block.
	tr = Assemble(p, AssembleConfig{Order: SlateOrder, Workers: 4, MaxAccesses: 3, Seed: 3})
	if len(tr) != 8 {
		t.Fatalf("sub-block cap emitted %d accesses, want one whole block (8)", len(tr))
	}
}

func TestAssembleDeterministic(t *testing.T) {
	p := Tiled{GridX: 8, GridY: 8, PanelBytes: 512, LineBytes: 64, BBase: 1 << 30}
	cfg := AssembleConfig{Order: HardwareOrder, Workers: 8, Chunk: 4, Seed: 42}
	a := Assemble(p, cfg)
	b := Assemble(p, cfg)
	if len(a) != len(b) {
		t.Fatal("length differs across runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("assembly not deterministic")
		}
	}
}

// The headline property this package exists for: Slate's in-order execution
// yields a strictly better L2 hit rate than hardware scatter for patterns
// with inter-block locality (RowSweep models GS).
func TestSlateOrderImprovesRowSweepHitRate(t *testing.T) {
	p := RowSweep{
		Blocks: 2048, PivotBytes: 4096, SliceBytes: 2048, SliceOverlap: 1024,
		LineBytes: 64, RowBase: 1 << 22,
	}
	hw := HitRate(p, AssembleConfig{Order: HardwareOrder, Workers: 32, Chunk: 8, Seed: 1}, l2())
	sl := HitRate(p, AssembleConfig{Order: SlateOrder, Workers: 32, TaskSize: 10, Chunk: 8, Seed: 1}, l2())
	if sl <= hw {
		t.Fatalf("Slate order hit rate %.3f not better than hardware %.3f", sl, hw)
	}
	if sl-hw < 0.02 {
		t.Fatalf("locality gain too small to matter: slate %.3f vs hw %.3f", sl, hw)
	}
}

// Slate's in-order tasks produce much longer first-touch sequential runs than
// hardware's jittered strided dealing — the DRAM row-locality mechanism.
func TestSlateOrderLengthensRuns(t *testing.T) {
	p := Streaming{Blocks: 2048, BytesPerBlock: 1024, LineBytes: 64}
	hw := StreamRunStats(p, AssembleConfig{Order: HardwareOrder, Workers: 32, Seed: 1})
	sl := StreamRunStats(p, AssembleConfig{Order: SlateOrder, Workers: 32, TaskSize: 10, Seed: 1})
	if sl.MeanRunBytes < 4*hw.MeanRunBytes {
		t.Fatalf("slate runs %.0fB not ≫ hardware runs %.0fB", sl.MeanRunBytes, hw.MeanRunBytes)
	}
	// With task size 10 each worker walks ~10KiB sequentially.
	if sl.MeanRunBytes < 8000 {
		t.Fatalf("slate mean run %.0fB, want ≈10KiB", sl.MeanRunBytes)
	}
}

// Repeat accesses to hot shared data (the pivot row) must not break runs.
func TestRunStatsIgnoreHotReuse(t *testing.T) {
	withPivot := RowSweep{Blocks: 256, PivotBytes: 1024, SliceBytes: 1024, LineBytes: 64, RowBase: 1 << 22}
	noPivot := Streaming{Blocks: 256, BytesPerBlock: 1024, LineBytes: 64, Base: 1 << 22}
	a := StreamRunStats(withPivot, AssembleConfig{Order: SlateOrder, Workers: 8, TaskSize: 10, Seed: 1})
	b := StreamRunStats(noPivot, AssembleConfig{Order: SlateOrder, Workers: 8, TaskSize: 10, Seed: 1})
	// Pivot adds at most a handful of cold lines/runs up front; mean run
	// lengths should be within 25% of each other.
	ratio := a.MeanRunBytes / b.MeanRunBytes
	if ratio < 0.75 || ratio > 1.25 {
		t.Fatalf("pivot reuse perturbs run stats: with=%.0fB without=%.0fB", a.MeanRunBytes, b.MeanRunBytes)
	}
}

func TestBoundedWindowShuffleStaysBounded(t *testing.T) {
	n, window := 1000, 32
	order := boundedWindowShuffle(n, window, 7)
	seen := make([]bool, n)
	totalDisp := 0
	for i, b := range order {
		if b < 0 || b >= n || seen[b] {
			t.Fatalf("not a permutation at %d", i)
		}
		seen[b] = true
		d := i - b
		if d < 0 {
			d = -d
		}
		totalDisp += d
		// Swap chains can displace an element a few windows forward, but
		// never unboundedly.
		if d > 8*window {
			t.Fatalf("element %d displaced by %d ≫ window %d", b, d, window)
		}
	}
	if mean := float64(totalDisp) / float64(n); mean > float64(window) {
		t.Fatalf("mean displacement %.1f exceeds window %d", mean, window)
	}
}

// For pure streaming (no inter-block reuse) ordering should barely matter.
func TestOrderInsensitiveForStreaming(t *testing.T) {
	p := Streaming{Blocks: 4096, BytesPerBlock: 1024, LineBytes: 64}
	hw := HitRate(p, AssembleConfig{Order: HardwareOrder, Workers: 32, Chunk: 8, Seed: 1}, l2())
	sl := HitRate(p, AssembleConfig{Order: SlateOrder, Workers: 32, TaskSize: 10, Chunk: 8, Seed: 1}, l2())
	if diff := sl - hw; diff > 0.05 || diff < -0.05 {
		t.Fatalf("streaming hit rates diverge: slate %.3f vs hw %.3f", sl, hw)
	}
}

// Property: assembled trace length equals min(total accesses, cap) for any
// worker/task configuration.
func TestPropertyAssembleLength(t *testing.T) {
	f := func(workers, taskSize, chunk uint8, seed int64) bool {
		p := Streaming{Blocks: 40, BytesPerBlock: 256, LineBytes: 64}
		cfg := AssembleConfig{
			Order:    SlateOrder,
			Workers:  int(workers%16) + 1,
			TaskSize: int(taskSize%8) + 1,
			Chunk:    int(chunk%16) + 1,
			Seed:     seed,
		}
		tr := Assemble(p, cfg)
		return len(tr) == 40*256/64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Every pattern's AccessesPerBlock hint must match what AppendBlock
// actually emits, for every block — Assemble's buffer preallocation and
// block sampling both trust it.
func TestAccessesPerBlockHintExact(t *testing.T) {
	patterns := map[string]BlockPattern{
		"streaming": Streaming{Blocks: 8, BytesPerBlock: 1000, LineBytes: 64},
		"streaming+write": Streaming{
			Blocks: 8, BytesPerBlock: 1024, LineBytes: 64,
			WriteStride: 4096, WriteBytes: 500,
		},
		"rowsweep": RowSweep{
			Blocks: 8, PivotBytes: 4096, SliceBytes: 1000,
			SliceOverlap: 128, LineBytes: 64,
		},
		"tiled":  Tiled{GridX: 4, GridY: 2, PanelBytes: 1000, LineBytes: 64},
		"random": Random{Blocks: 8, BytesPerBlock: 1000, TableBytes: 1 << 16, TableReads: 7, LineBytes: 64},
	}
	for name, p := range patterns {
		sp, ok := p.(SizedPattern)
		if !ok {
			t.Fatalf("%s does not implement SizedPattern", name)
		}
		want := sp.AccessesPerBlock()
		for b := 0; b < p.NumBlocks(); b++ {
			if got := len(p.AppendBlock(nil, b)); got != want {
				t.Fatalf("%s block %d emits %d accesses, hint says %d", name, b, got, want)
			}
		}
	}
}

func BenchmarkAssembleRowSweep(b *testing.B) {
	p := RowSweep{Blocks: 2048, PivotBytes: 4096, SliceBytes: 2048, LineBytes: 64, RowBase: 1 << 22}
	cfg := AssembleConfig{Order: SlateOrder, Workers: 32, TaskSize: 10, Chunk: 8, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Assemble(p, cfg)
	}
}
