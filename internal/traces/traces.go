// Package traces generates synthetic per-workload address traces in the two
// block-execution orders the paper contrasts:
//
//   - Hardware order: the GPU's block-oriented scheduler deals thread blocks
//     across SMs in waves, so the L2 observes many block streams interleaved
//     at fine granularity with no ordering relationship between neighbours.
//   - Slate order: persistent workers pull tasks (groups of SLATE_ITERS
//     consecutive blocks) from a queue, so each worker's stream walks
//     consecutive blocks, preserving the locality the kernel author designed.
//
// Feeding these traces to the internal/cache simulator yields the hit-rate
// difference that drives Table III (GS +38% access bandwidth under Slate).
package traces

import (
	"math/rand"

	"slate/internal/cache"
)

// BlockPattern describes which cache lines a single thread block touches.
type BlockPattern interface {
	// NumBlocks is the total block count of the (possibly sampled) kernel.
	NumBlocks() int
	// AppendBlock appends the line-granular byte addresses touched by block
	// b, in program order, to dst.
	AppendBlock(dst []uint64, b int) []uint64
}

// SizedPattern is an optional BlockPattern extension reporting how many
// accesses AppendBlock emits per block. Assemble uses it to size trace and
// stream buffers exactly instead of growing them through append; every
// pattern in this package implements it (all emit the same count for each
// block).
type SizedPattern interface {
	BlockPattern
	// AccessesPerBlock is the exact length AppendBlock adds for any block.
	AccessesPerBlock() int
}

// accessesPerBlock returns the per-block access count, via the SizedPattern
// fast path or by probing block 0.
func accessesPerBlock(p BlockPattern) int {
	if sp, ok := p.(SizedPattern); ok {
		return sp.AccessesPerBlock()
	}
	return len(p.AppendBlock(nil, 0))
}

// lineCount is ceil(bytes/lineBytes): the number of addresses a
// line-stepped loop over bytes emits.
func lineCount(bytes, lineBytes int) int {
	if bytes <= 0 || lineBytes <= 0 {
		return 0
	}
	return (bytes + lineBytes - 1) / lineBytes
}

// Streaming models kernels whose blocks each read/write a private contiguous
// chunk (stream triad, BlackScholes, transpose reads). There is no
// inter-block reuse, so ordering barely matters — which is itself a property
// the tests assert.
type Streaming struct {
	Blocks        int
	BytesPerBlock int
	LineBytes     int
	// WriteStride, if nonzero, adds a second strided stream per block
	// (modeling transpose's column writes at stride WriteStride).
	WriteStride int
	WriteBytes  int
	Base        uint64
	WriteBase   uint64
}

// NumBlocks implements BlockPattern.
func (s Streaming) NumBlocks() int { return s.Blocks }

// AccessesPerBlock implements SizedPattern.
func (s Streaming) AccessesPerBlock() int {
	n := lineCount(s.BytesPerBlock, s.LineBytes)
	if s.WriteStride > 0 && s.WriteBytes > 0 {
		n += lineCount(s.WriteBytes, s.LineBytes)
	}
	return n
}

// AppendBlock implements BlockPattern.
func (s Streaming) AppendBlock(dst []uint64, b int) []uint64 {
	start := s.Base + uint64(b)*uint64(s.BytesPerBlock)
	for off := 0; off < s.BytesPerBlock; off += s.LineBytes {
		dst = append(dst, start+uint64(off))
	}
	if s.WriteStride > 0 && s.WriteBytes > 0 {
		wstart := s.WriteBase + uint64(b)*uint64(s.LineBytes)
		for off := 0; off < s.WriteBytes; off += s.LineBytes {
			n := off / s.LineBytes
			dst = append(dst, wstart+uint64(n)*uint64(s.WriteStride))
		}
	}
	return dst
}

// RowSweep models Gaussian elimination's inner kernels: every block reads a
// shared pivot row (strong inter-block reuse) plus its own slice of the
// working row. Consecutive blocks touch adjacent slices, so in-order
// execution turns the pivot row and row boundaries into L2 hits.
type RowSweep struct {
	Blocks       int
	PivotBytes   int // shared row, re-read by every block
	SliceBytes   int // private slice of the working row
	LineBytes    int
	PivotBase    uint64
	RowBase      uint64
	SliceOverlap int // bytes of overlap with the previous block's slice
}

// NumBlocks implements BlockPattern.
func (r RowSweep) NumBlocks() int { return r.Blocks }

// AccessesPerBlock implements SizedPattern.
func (r RowSweep) AccessesPerBlock() int {
	return lineCount(r.PivotBytes, r.LineBytes) + lineCount(r.SliceBytes, r.LineBytes)
}

// AppendBlock implements BlockPattern.
func (r RowSweep) AppendBlock(dst []uint64, b int) []uint64 {
	for off := 0; off < r.PivotBytes; off += r.LineBytes {
		dst = append(dst, r.PivotBase+uint64(off))
	}
	stride := r.SliceBytes - r.SliceOverlap
	if stride < r.LineBytes {
		stride = r.LineBytes
	}
	start := r.RowBase + uint64(b)*uint64(stride)
	for off := 0; off < r.SliceBytes; off += r.LineBytes {
		dst = append(dst, start+uint64(off))
	}
	return dst
}

// Tiled models SGEMM: block (i,j) reads row-panel i of A and column-panel j
// of B. Blocks are laid out row-major in j-then-i order, so consecutive
// blocks share the A panel; panels of B recur with period GridX.
type Tiled struct {
	GridX, GridY int // blocks per row / column
	PanelBytes   int // bytes per A-row-panel and per B-column-panel
	LineBytes    int
	ABase, BBase uint64
}

// NumBlocks implements BlockPattern.
func (t Tiled) NumBlocks() int { return t.GridX * t.GridY }

// AccessesPerBlock implements SizedPattern.
func (t Tiled) AccessesPerBlock() int { return 2 * lineCount(t.PanelBytes, t.LineBytes) }

// AppendBlock implements BlockPattern.
func (t Tiled) AppendBlock(dst []uint64, b int) []uint64 {
	i := b / t.GridX // row index → A panel
	j := b % t.GridX // col index → B panel
	aStart := t.ABase + uint64(i)*uint64(t.PanelBytes)
	bStart := t.BBase + uint64(j)*uint64(t.PanelBytes)
	// The k-loop stages panel chunks through shared memory; each panel is
	// read as its own sequential stream (two concurrent streams at the
	// memory controller, not one interleaved one).
	for off := 0; off < t.PanelBytes; off += t.LineBytes {
		dst = append(dst, aStart+uint64(off))
	}
	for off := 0; off < t.PanelBytes; off += t.LineBytes {
		dst = append(dst, bStart+uint64(off))
	}
	return dst
}

// Random models the quasi-random generator: each block writes a modest
// private region and performs a few scattered table reads. Low volume, low
// reuse.
type Random struct {
	Blocks        int
	BytesPerBlock int
	TableBytes    int
	TableReads    int
	LineBytes     int
	Seed          int64
	Base          uint64
	TableBase     uint64
}

// NumBlocks implements BlockPattern.
func (r Random) NumBlocks() int { return r.Blocks }

// AccessesPerBlock implements SizedPattern.
func (r Random) AccessesPerBlock() int {
	return lineCount(r.BytesPerBlock, r.LineBytes) + r.TableReads
}

// AppendBlock implements BlockPattern.
func (r Random) AppendBlock(dst []uint64, b int) []uint64 {
	rng := rand.New(rand.NewSource(r.Seed + int64(b)))
	start := r.Base + uint64(b)*uint64(r.BytesPerBlock)
	for off := 0; off < r.BytesPerBlock; off += r.LineBytes {
		dst = append(dst, start+uint64(off))
	}
	lines := r.TableBytes / r.LineBytes
	if lines < 1 {
		lines = 1
	}
	for k := 0; k < r.TableReads; k++ {
		dst = append(dst, r.TableBase+uint64(rng.Intn(lines))*uint64(r.LineBytes))
	}
	return dst
}

// Order identifies a block-execution order for trace assembly.
type Order int

// Execution orders.
const (
	// HardwareOrder interleaves many block streams pseudo-randomly, modeling
	// the hardware scheduler's wave dispatch.
	HardwareOrder Order = iota
	// SlateOrder interleaves per-worker streams where each worker executes
	// tasks of consecutive blocks in queue order.
	SlateOrder
)

// AssembleConfig controls trace assembly.
type AssembleConfig struct {
	Order Order
	// Workers is the number of concurrent block streams (hardware: resident
	// blocks; Slate: persistent workers).
	Workers int
	// TaskSize is the SLATE_ITERS grouping (Slate order only; >=1).
	TaskSize int
	// Chunk is the number of accesses a stream issues before the L2 sees
	// another stream's accesses; models fine-grained interleaving.
	Chunk int
	// Seed drives the deterministic interleaving shuffle.
	Seed int64
	// MaxAccesses caps the assembled trace length (0 = no cap). Blocks are
	// consumed from the start; patterns here are periodic so a prefix is
	// representative.
	MaxAccesses int
}

// Assemble builds a single interleaved address trace from the pattern under
// the given execution order.
func Assemble(p BlockPattern, cfg AssembleConfig) []uint64 {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.TaskSize < 1 {
		cfg.TaskSize = 1
	}
	if cfg.Chunk < 1 {
		cfg.Chunk = 8
	}
	// Cap cost by sampling a prefix of blocks, never by truncating the
	// merged trace: per-block access composition must stay representative.
	per := accessesPerBlock(p)
	n := sampleBlocksFor(p, per, cfg.MaxAccesses)
	if cfg.Workers > n {
		cfg.Workers = n
	}

	// Deal blocks to worker queues, preallocated to their final length: the
	// round-robin deal leaves queue sizes within one block of n/Workers.
	queues := make([][]int, cfg.Workers)
	perQueue := n/cfg.Workers + cfg.TaskSize
	for w := range queues {
		queues[w] = make([]int, 0, perQueue)
	}
	switch cfg.Order {
	case HardwareOrder:
		// Wave dispatch with jitter: block start order drifts within a
		// bounded window because block durations vary and SMs re-issue
		// independently. The shuffled order is dealt round-robin, so each
		// worker's stream is strided and neighbour blocks land on different
		// workers at random relative phases — destroying the inter-block
		// locality the kernel author laid out.
		order := boundedWindowShuffle(n, 4*cfg.Workers, cfg.Seed)
		for i, b := range order {
			w := i % cfg.Workers
			queues[w] = append(queues[w], b)
		}
	case SlateOrder:
		// Task pulls: tasks of TaskSize consecutive blocks are claimed
		// round-robin, so each worker walks runs of consecutive blocks.
		task := 0
		for b := 0; b < n; b += cfg.TaskSize {
			w := task % cfg.Workers
			for k := b; k < b+cfg.TaskSize && k < n; k++ {
				queues[w] = append(queues[w], k)
			}
			task++
		}
	}

	// Expand each worker queue into its access stream, sized from the
	// pattern's per-block hint so append never reallocates.
	streams := make([][]uint64, cfg.Workers)
	for w, q := range queues {
		s := make([]uint64, 0, len(q)*per)
		for _, b := range q {
			s = p.AppendBlock(s, b)
		}
		streams[w] = s
	}

	// Merge streams chunk-by-chunk with a deterministic shuffle over the
	// set of streams that still have accesses left.
	rng := rand.New(rand.NewSource(cfg.Seed))
	pos := make([]int, cfg.Workers)
	live := make([]int, 0, cfg.Workers)
	for w := range streams {
		if len(streams[w]) > 0 {
			live = append(live, w)
		}
	}
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]uint64, 0, total)
	for len(live) > 0 && len(out) < total {
		i := rng.Intn(len(live))
		w := live[i]
		s := streams[w]
		end := pos[w] + cfg.Chunk
		if end > len(s) {
			end = len(s)
		}
		out = append(out, s[pos[w]:end]...)
		pos[w] = end
		if pos[w] >= len(s) {
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	return out
}

// sampleBlocksFor returns how many leading blocks of the pattern to use so
// the assembled trace stays within maxAccesses (0 = no cap), given the
// per-block access count. The patterns in this package are periodic, so a
// prefix is representative.
func sampleBlocksFor(p BlockPattern, per, maxAccesses int) int {
	n := p.NumBlocks()
	if maxAccesses <= 0 || n == 0 {
		return n
	}
	if per == 0 {
		return n
	}
	m := maxAccesses / per
	if m < 1 {
		m = 1
	}
	if m < n {
		return m
	}
	return n
}

// HitRate assembles a trace for the pattern under cfg and simulates it
// through a cache with the given geometry, returning the L2 hit rate.
func HitRate(p BlockPattern, acfg AssembleConfig, ccfg cache.Config) float64 {
	trace := Assemble(p, acfg)
	st := cache.SimulateTrace(ccfg, trace)
	return st.HitRate()
}

// boundedWindowShuffle returns a permutation of 0..n-1 where element i lands
// within roughly ±window of position i: a Fisher–Yates restricted to a
// sliding window, modeling hardware dispatch jitter.
func boundedWindowShuffle(n, window int, seed int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	if window <= 1 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		hi := i + window
		if hi > n {
			hi = n
		}
		j := i + rng.Intn(hi-i)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// RunStats summarizes the sequential locality of per-worker access streams.
// MeanRunBytes is the average length, in bytes, of maximal runs of
// line-consecutive addresses within a single worker's stream. Long runs let
// the DRAM controller keep rows open; the memory-system model maps this to
// achievable bandwidth efficiency.
type RunStats struct {
	Runs         int
	MeanRunBytes float64
}

// StreamRunStats computes RunStats for the pattern under the given execution
// order without interleaving (runs are a per-stream property).
func StreamRunStats(p BlockPattern, cfg AssembleConfig) RunStats {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.TaskSize < 1 {
		cfg.TaskSize = 1
	}
	per := accessesPerBlock(p)
	n := sampleBlocksFor(p, per, cfg.MaxAccesses)
	if cfg.Workers > n {
		cfg.Workers = n
	}
	queues := make([][]int, cfg.Workers)
	switch cfg.Order {
	case HardwareOrder:
		order := boundedWindowShuffle(n, 4*cfg.Workers, cfg.Seed)
		for i, b := range order {
			queues[i%cfg.Workers] = append(queues[i%cfg.Workers], b)
		}
	case SlateOrder:
		task := 0
		for b := 0; b < n; b += cfg.TaskSize {
			w := task % cfg.Workers
			for k := b; k < b+cfg.TaskSize && k < n; k++ {
				queues[w] = append(queues[w], k)
			}
			task++
		}
	}
	// Runs are measured over each worker's first-touch lines only: repeat
	// accesses (hot shared data like GS's pivot row) are served by the L2
	// and neither extend nor break a DRAM access run.
	var runs, coldLines int
	lb := uint64(64)
	buf := make([]uint64, 0, (n/cfg.Workers+1)*per)
	for _, q := range queues {
		buf = buf[:0]
		for _, b := range q {
			buf = p.AppendBlock(buf, b)
		}
		if len(buf) == 0 {
			continue
		}
		seen := make(map[uint64]struct{}, len(buf))
		havePrev := false
		var prev uint64
		for _, a := range buf {
			ln := a / lb
			if _, ok := seen[ln]; ok {
				continue
			}
			seen[ln] = struct{}{}
			coldLines++
			if !havePrev || (ln != prev && ln != prev+1) {
				runs++
			}
			prev = ln
			havePrev = true
		}
	}
	if runs == 0 {
		return RunStats{}
	}
	return RunStats{Runs: runs, MeanRunBytes: float64(uint64(coldLines)*lb) / float64(runs)}
}
