package engine

import (
	"testing"

	"slate/internal/device"
	"slate/internal/kern"
	"slate/internal/vtime"
)

// footprintModel is a PerfModel whose hit rate depends on the granted L2
// capacity: hit = min(maxHit, l2Bytes/footprint) — a linear miss-ratio
// curve that makes the engine's L2-partition fixpoint observable.
type footprintModel struct {
	footprint map[string]float64
	maxHit    float64
}

func (m *footprintModel) HitRate(spec *kern.Spec, _ Mode, _ int, l2Bytes float64) float64 {
	fp := m.footprint[spec.Name]
	if fp <= 0 {
		return 0
	}
	h := l2Bytes / fp
	if h > m.maxHit {
		h = m.maxHit
	}
	return h
}

func (m *footprintModel) MeanRunBytes(*kern.Spec, Mode, int) float64 { return 1 << 20 }

func cachedKernel(name string, bytesPB float64) *kern.Spec {
	return &kern.Spec{
		Name: name, Grid: kern.D1(2400), BlockDim: kern.D1(256),
		FLOPsPerBlock: 1e5, InstrPerBlock: 1e5, L2BytesPerBlock: bytesPB,
		ComputeEff: 0.8, MemMLP: 8,
	}
}

// Solo, a kernel owns the whole L2; corunning, it gets only its
// demand-proportional share, so its hit rate drops and its DRAM traffic
// rises — the cache-interference half of co-run contention.
func TestL2PartitionRaisesDRAMTrafficUnderCorun(t *testing.T) {
	dev := device.TitanXp()
	model := &footprintModel{
		footprint: map[string]float64{
			"a": float64(dev.L2.SizeBytes) * 1.2, // almost fits solo
			"b": float64(dev.L2.SizeBytes) * 1.2,
		},
		maxHit: 0.8,
	}
	solo := func() Metrics {
		clk := vtime.NewClock()
		e := New(dev, clk, model)
		h, err := e.Launch(cachedKernel("a", 1<<20), LaunchOpts{Mode: SlateSched, TaskSize: 10, SMLow: 0, SMHigh: 29})
		if err != nil {
			t.Fatal(err)
		}
		clk.Run(2_000_000)
		return h.Metrics()
	}()

	clk := vtime.NewClock()
	e := New(dev, clk, model)
	ha, err := e.Launch(cachedKernel("a", 1<<20), LaunchOpts{Mode: SlateSched, TaskSize: 10, SMLow: 0, SMHigh: 14})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Launch(cachedKernel("b", 1<<20), LaunchOpts{Mode: SlateSched, TaskSize: 10, SMLow: 15, SMHigh: 29}); err != nil {
		t.Fatal(err)
	}
	clk.Run(2_000_000)
	corun := ha.Metrics()

	soloMiss := solo.DRAMBytes / solo.L2Bytes
	corunMiss := corun.DRAMBytes / corun.L2Bytes
	if corunMiss <= soloMiss*1.2 {
		t.Fatalf("corun miss ratio %.3f not clearly above solo %.3f; L2 partitioning inert", corunMiss, soloMiss)
	}
}

// The fixpoint splits the L2 by access demand: a kernel with double the
// per-block traffic ends up with a larger share (a lower miss penalty) than
// its light partner.
func TestL2SharesFollowDemand(t *testing.T) {
	dev := device.TitanXp()
	model := &footprintModel{
		footprint: map[string]float64{
			"heavy": float64(dev.L2.SizeBytes) * 2,
			"light": float64(dev.L2.SizeBytes) * 2,
		},
		maxHit: 0.9,
	}
	clk := vtime.NewClock()
	e := New(dev, clk, model)
	hh, err := e.Launch(cachedKernel("heavy", 2<<20), LaunchOpts{Mode: SlateSched, TaskSize: 10, SMLow: 0, SMHigh: 14})
	if err != nil {
		t.Fatal(err)
	}
	light := cachedKernel("light", 16<<10)
	light.FLOPsPerBlock = 1e8 // compute-bound: its access demand is a trickle
	hl, err := e.Launch(light, LaunchOpts{Mode: SlateSched, TaskSize: 10, SMLow: 15, SMHigh: 29})
	if err != nil {
		t.Fatal(err)
	}
	// Sample the converged hit rates shortly after launch.
	var heavyHit, lightHit float64
	clk.After(1000, func(vtime.Time) {
		heavyHit = hh.hitRate
		lightHit = hl.hitRate
	})
	clk.Run(2_000_000)
	if !(heavyHit > lightHit) {
		t.Fatalf("heavy demand hit %.3f not above light %.3f; shares not demand-weighted", heavyHit, lightHit)
	}
}
