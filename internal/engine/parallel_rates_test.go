package engine

import (
	"fmt"
	"testing"

	"slate/internal/device"
	"slate/internal/vtime"
	"slate/workloads"
)

// corunFingerprint runs the Fig. 7-style SGEMM×Transpose pairing — one Slate
// co-run on split SM ranges and, after it drains, one hardware leftover
// co-run — and folds every metric the experiments consume into a string.
// Exact (%v) formatting keeps the comparison bitwise.
func corunFingerprint(t *testing.T, workers int, rescheduleEvery bool, fanGate int) (string, uint64) {
	t.Helper()
	oldRate, oldAdv := rateFanKernels, advanceFanKernels
	rateFanKernels, advanceFanKernels = fanGate, fanGate
	defer func() { rateFanKernels, advanceFanKernels = oldRate, oldAdv }()

	clk := vtime.NewClock()
	dev := device.TitanXp()
	e := New(dev, clk, NewTraceModel(dev))
	e.Workers = workers
	e.RescheduleEveryEvent = rescheduleEvery

	sg := workloads.SGEMMApp().Kernel
	tr := workloads.TransposeApp().Kernel

	mid := dev.NumSMs / 2
	a, err := e.Launch(sg, LaunchOpts{Mode: SlateSched, SMLow: 0, SMHigh: mid - 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Launch(tr, LaunchOpts{Mode: SlateSched, SMLow: mid, SMHigh: dev.NumSMs - 1})
	if err != nil {
		t.Fatal(err)
	}
	run(t, clk)

	c, err := e.Launch(sg, LaunchOpts{Mode: HardwareSched})
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Launch(tr, LaunchOpts{Mode: HardwareSched})
	if err != nil {
		t.Fatal(err)
	}
	run(t, clk)

	out := ""
	for _, h := range []*Handle{a, b, c, d} {
		if !h.Done() {
			t.Fatalf("kernel %q did not complete", h.Spec().Name)
		}
		m := h.Metrics()
		out += fmt.Sprintf("%s: dur=%v flops=%v l2=%v dram=%v instr=%v thr=%v sm=%v at=%v\n",
			h.Spec().Name, m.Duration(), m.FLOPs, m.L2Bytes, m.DRAMBytes,
			m.Instr, m.StallMemThrottle, m.SMSecondsIntegral, m.Atomics)
	}
	return out, clk.Fired()
}

// TestEngineWorkersBitIdentical is the §15 contract at the engine layer:
// fanning computeRates pass 1 and advanceProgress across goroutines must not
// change a single bit of any metric or the dispatched-event count. fanGate=2
// forces the fan for every recompute, not just cold-model ones.
func TestEngineWorkersBitIdentical(t *testing.T) {
	ref, refFired := corunFingerprint(t, 1, false, 2)
	for _, workers := range []int{2, 8} {
		got, gotFired := corunFingerprint(t, workers, false, 2)
		if got != ref {
			t.Fatalf("Workers=%d metrics diverged from serial:\n--- serial ---\n%s--- Workers=%d ---\n%s", workers, ref, workers, got)
		}
		if gotFired != refFired {
			t.Fatalf("Workers=%d fired %d events, serial fired %d", workers, gotFired, refFired)
		}
	}
}

// TestRescheduleSkipReducesEvents pins the recompute churn fix: with the
// skip enabled the same workload dispatches measurably fewer events, and the
// metrics the experiments render are unchanged. The skip introduces at most
// sub-nanosecond completion-time drift (remaining/rate is re-derived rather
// than carried), so metric equality is asserted at the experiments' 3-decimal
// rendering rather than bitwise.
func TestRescheduleSkipReducesEvents(t *testing.T) {
	render := func(rescheduleEvery bool) (string, uint64) {
		clk := vtime.NewClock()
		dev := device.TitanXp()
		e := New(dev, clk, NewTraceModel(dev))
		e.RescheduleEveryEvent = rescheduleEvery

		sg := workloads.SGEMMApp().Kernel
		tr := workloads.TransposeApp().Kernel
		hs := []*Handle{}
		mid := dev.NumSMs / 2
		a, err := e.Launch(sg, LaunchOpts{Mode: SlateSched, SMLow: 0, SMHigh: mid - 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Launch(tr, LaunchOpts{Mode: SlateSched, SMLow: mid, SMHigh: dev.NumSMs - 1})
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, a, b)
		run(t, clk)
		c, err := e.Launch(sg, LaunchOpts{Mode: HardwareSched})
		if err != nil {
			t.Fatal(err)
		}
		d, err := e.Launch(tr, LaunchOpts{Mode: HardwareSched})
		if err != nil {
			t.Fatal(err)
		}
		hs = append(hs, c, d)
		run(t, clk)

		out := ""
		for _, h := range hs {
			m := h.Metrics()
			out += fmt.Sprintf("%s: dur=%.3fms gflops=%.3f dram=%.3f access=%.3f thr=%.3f ipc=%.3f at=%d\n",
				h.Spec().Name, m.Duration().Millis(), m.GFLOPS(), m.DRAMBW(),
				m.AccessBW(), m.StallMemThrottle, m.IPC(dev.SM.ClockHz), m.Atomics)
		}
		return out, clk.Fired()
	}

	always, firedAlways := render(true)
	skip, firedSkip := render(false)
	if firedSkip >= firedAlways {
		t.Fatalf("reschedule skip did not reduce events: %d with skip vs %d without", firedSkip, firedAlways)
	}
	if always != skip {
		t.Fatalf("reschedule skip changed rendered metrics:\n--- always ---\n%s--- skip ---\n%s", always, skip)
	}
	t.Logf("dispatched events: %d without skip, %d with skip", firedAlways, firedSkip)
}
