package engine

import (
	"math/rand"
	"testing"

	"slate/internal/device"
	"slate/internal/kern"
	"slate/internal/vtime"
)

// randomSpec builds a random but valid kernel.
func randomSpec(rng *rand.Rand, name string) *kern.Spec {
	threads := []int{64, 128, 256, 512}[rng.Intn(4)]
	return &kern.Spec{
		Name:            name,
		Grid:            kern.D1(100 + rng.Intn(4000)),
		BlockDim:        kern.D1(threads),
		FLOPsPerBlock:   float64(1+rng.Intn(1000)) * 1e4,
		InstrPerBlock:   float64(1+rng.Intn(100)) * 1e3,
		L2BytesPerBlock: float64(1+rng.Intn(1000)) * 1e3,
		ComputeEff:      0.05 + rng.Float64()*0.5,
		MemMLP:          1 + rng.Float64()*7,
		MemEff:          0.3 + rng.Float64()*0.7,
	}
}

// Property: any random pair of kernels on random disjoint partitions
// completes, accumulates exactly its declared work, and reports sane
// metrics.
func TestPropertyRandomCorunsComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		dev := device.TitanXp()
		clk := vtime.NewClock()
		e := New(dev, clk, staticModel())

		a := randomSpec(rng, "a")
		b := randomSpec(rng, "b")
		split := 3 + rng.Intn(24) // a gets [0,split-1], b the rest
		ha, err := e.Launch(a, LaunchOpts{Mode: SlateSched, TaskSize: 1 + rng.Intn(20), SMLow: 0, SMHigh: split - 1})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		hb, err := e.Launch(b, LaunchOpts{Mode: SlateSched, TaskSize: 1 + rng.Intn(20), SMLow: split, SMHigh: 29})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n := clk.Run(3_000_000); n >= 3_000_000 {
			t.Fatalf("trial %d: did not converge (split %d, a=%+v b=%+v)", trial, split, a, b)
		}
		for _, h := range []*Handle{ha, hb} {
			if !h.Done() {
				t.Fatalf("trial %d: kernel %s incomplete", trial, h.Spec().Name)
			}
			m := h.Metrics()
			spec := h.Spec()
			wantFLOPs := spec.TotalFLOPs()
			if rel := (m.FLOPs - wantFLOPs) / (wantFLOPs + 1); rel > 1e-6 || rel < -1e-6 {
				t.Fatalf("trial %d: %s FLOPs %.0f, want %.0f", trial, spec.Name, m.FLOPs, wantFLOPs)
			}
			if m.L2Bytes < spec.TotalL2Bytes()*0.999 || m.L2Bytes > spec.TotalL2Bytes()*1.001 {
				t.Fatalf("trial %d: %s L2 bytes %.0f, want %.0f", trial, spec.Name, m.L2Bytes, spec.TotalL2Bytes())
			}
			if m.Duration() <= 0 || m.Busy <= 0 {
				t.Fatalf("trial %d: %s nonpositive times %+v", trial, spec.Name, m)
			}
			if m.StallMemThrottle < 0 || m.StallMemThrottle > 1 {
				t.Fatalf("trial %d: %s throttle %v outside [0,1]", trial, spec.Name, m.StallMemThrottle)
			}
			if m.DRAMBytes > m.L2Bytes*1.001 {
				t.Fatalf("trial %d: %s DRAM bytes exceed L2 bytes", trial, spec.Name)
			}
		}
	}
}

// Property: random resize storms never lose or duplicate progress: the
// kernel still completes exactly its block count.
func TestPropertyResizeStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		dev := device.TitanXp()
		clk := vtime.NewClock()
		e := New(dev, clk, staticModel())
		spec := randomSpec(rng, "storm")
		h, err := e.Launch(spec, LaunchOpts{Mode: SlateSched, TaskSize: 10, SMLow: 0, SMHigh: 29})
		if err != nil {
			t.Fatal(err)
		}
		// Schedule 5 random resizes across the estimated execution window.
		est := h.Metrics() // zero; use a rough bound instead
		_ = est
		for i := 0; i < 5; i++ {
			at := vtime.Time(1000 + rng.Intn(5_000_000)) // within the first 5ms
			lo := 0
			hi := 1 + rng.Intn(29)
			clk.At(at, func(vtime.Time) {
				if !h.Done() {
					_ = e.Resize(h, lo, hi)
				}
			})
		}
		if n := clk.Run(3_000_000); n >= 3_000_000 {
			t.Fatalf("trial %d: did not converge", trial)
		}
		if !h.Done() {
			t.Fatalf("trial %d: incomplete after resize storm", trial)
		}
		if got, want := h.Progress(), float64(spec.NumBlocks()); got != want {
			t.Fatalf("trial %d: progress %v, want %v", trial, got, want)
		}
	}
}

// Property: at task size 1, a kernel on more SMs is never slower. (At
// larger task sizes this deliberately fails for small grids: task grouping
// starves a wide machine of active workers — Fig. 5's BlackScholes effect —
// so the property is scoped to the grouping-free configuration.)
func TestPropertyMonotoneInSMs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		spec := randomSpec(rng, "mono")
		var prev float64
		for _, sms := range []int{5, 10, 20, 30} {
			clk := vtime.NewClock()
			e := New(device.TitanXp(), clk, staticModel())
			h, err := e.Launch(spec, LaunchOpts{Mode: SlateSched, TaskSize: 1, SMLow: 0, SMHigh: sms - 1})
			if err != nil {
				t.Fatal(err)
			}
			if n := clk.Run(3_000_000); n >= 3_000_000 {
				t.Fatalf("trial %d: did not converge at %d SMs", trial, sms)
			}
			d := h.Metrics().Duration().Seconds()
			if prev > 0 && d > prev*1.02 {
				t.Fatalf("trial %d: slower with more SMs (%d SMs: %v vs %v) spec=%+v",
					trial, sms, d, prev, spec)
			}
			prev = d
		}
	}
}
