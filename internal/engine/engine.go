// Package engine is the discrete-event GPU execution engine. Kernels
// progress at piecewise-constant rates between scheduling events (launch,
// completion, resize); at each event the engine recomputes every running
// kernel's block-completion rate from the device model:
//
//   - compute: SM share × peak issue × kernel efficiency × warp-occupancy ramp
//   - L2: accessed-byte ceiling scaled by SM share
//   - DRAM: per-kernel streaming ceiling (Fig. 1 knee) × run-length
//     efficiency, arbitrated across co-runners on the shared bus
//   - service floor: per-block dispatch latency (hardware) or task-queue
//     atomic (Slate), amortized over the active workers
//
// The L2 is partitioned among co-runners by access demand and each kernel's
// hit rate is read off its miss-ratio curve at its share — computed by the
// real cache simulator over the kernel's synthetic trace in the appropriate
// block order.
package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"slate/internal/device"
	"slate/internal/kern"
	"slate/internal/vtime"
)

// Mode selects the block-scheduling regime for a kernel instance.
type Mode int

// Scheduling modes.
const (
	// HardwareSched is the stock block-oriented hardware scheduler: blocks
	// are dispatched to SMs in jittered wave order.
	HardwareSched Mode = iota
	// SlateSched runs the transformed kernel: persistent workers bound to
	// an SM range pull in-order tasks from the queue.
	SlateSched
)

func (m Mode) String() string {
	switch m {
	case HardwareSched:
		return "hardware"
	case SlateSched:
		return "slate"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// PerfModel supplies the locality parameters for a kernel under a given
// scheduling regime. Implementations may run real cache simulations
// (TraceModel) or return fixed values (StaticModel, for tests).
//
// Implementations must be safe for concurrent lookups: with Engine.Workers
// > 1 the rate fixpoint fans its per-kernel pass across goroutines.
// TraceModel's singleflight entry cache and the stateless StaticModel both
// satisfy this.
type PerfModel interface {
	// HitRate returns the kernel's L2 hit rate when it effectively owns
	// l2Bytes of cache under the given mode and task size.
	HitRate(spec *kern.Spec, mode Mode, taskSize int, l2Bytes float64) float64
	// MeanRunBytes returns the mean sequential run length of the kernel's
	// first-touch DRAM stream under the given mode and task size.
	MeanRunBytes(spec *kern.Spec, mode Mode, taskSize int) float64
}

// LaunchOpts configures a kernel instance.
type LaunchOpts struct {
	Mode Mode
	// TaskSize is the SLATE_ITERS grouping (Slate mode; <=0 selects 10).
	TaskSize int
	// SMLow and SMHigh bound the designated SM range, inclusive (Slate
	// mode). Hardware mode ignores them and competes for the whole device.
	SMLow, SMHigh int
	// Priority orders leftover allocation (lower = earlier arrival wins).
	// Defaults to launch order.
	Priority int
}

// Metrics accumulates a kernel instance's counters, the source of the
// nvprof-style numbers in Tables II-IV.
type Metrics struct {
	Launched  vtime.Time
	Completed vtime.Time
	// Busy is the time during which the kernel had a nonzero allocation.
	Busy vtime.Duration
	// FLOPs, L2Bytes, DRAMBytes, Instr are totals over the execution.
	FLOPs     float64
	L2Bytes   float64
	DRAMBytes float64
	Instr     float64
	// StallMemThrottle is the time-weighted fraction of execution in which
	// the DRAM bus, not compute, limited progress (nvprof's memory
	// throttle stall reason).
	StallMemThrottle float64
	// Atomics counts task-queue pulls (Slate mode).
	Atomics int64
	// Resizes counts dynamic SM-range adjustments.
	Resizes int
	// SMSecondsIntegral accumulates ∫ SMs dt, for IPC normalization.
	SMSecondsIntegral float64
}

// Duration returns the kernel's makespan.
func (m Metrics) Duration() vtime.Duration { return m.Completed.Sub(m.Launched) }

// GFLOPS returns achieved GFLOP/s over the makespan.
func (m Metrics) GFLOPS() float64 {
	d := m.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return m.FLOPs / d / 1e9
}

// AccessBW returns the achieved L2-visible access bandwidth in GB/s — the
// sum of global load and store throughput as nvprof reports it.
func (m Metrics) AccessBW() float64 {
	d := m.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return m.L2Bytes / d / 1e9
}

// DRAMBW returns the achieved DRAM bandwidth in GB/s.
func (m Metrics) DRAMBW() float64 {
	d := m.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return m.DRAMBytes / d / 1e9
}

// IPC returns instructions per SM-cycle averaged over the SMs the kernel
// actually occupied.
func (m Metrics) IPC(clockHz float64) float64 {
	if m.SMSecondsIntegral <= 0 {
		return 0
	}
	return m.Instr / (m.SMSecondsIntegral * clockHz)
}

// Handle identifies a running (or completed) kernel instance.
type Handle struct {
	id         int
	spec       *kern.Spec
	opts       LaunchOpts
	numBlocks  float64
	blocksDone float64
	metrics    Metrics
	done       bool
	evicted    bool
	onComplete []func(vtime.Time)

	// cached static parameters
	warpsPerBlock float64
	maxWorkers    int // per current SM range (Slate) or device capacity (hardware)

	// dynamic state
	pausedUntil vtime.Time
	completion  *vtime.Event
	checkpoint  *vtime.Event

	// modelWarm records that the PerfModel has served this instance once,
	// i.e. any expensive cold entry build (trace synthesis, MRC sweep) is
	// behind us; the rate fixpoint fans pass 1 across kernels only while a
	// cold build is possible or the kernel set is wide.
	modelWarm bool

	// last computed rate snapshot (blocks/sec and per-block resource use)
	rate        float64
	dramPerBlk  float64
	hitRate     float64
	memThrottle float64
	smAlloc     float64

	// rate/allocation at which the pending completion and checkpoint
	// events were scheduled; when both are bitwise-unchanged by a
	// recompute, the events still describe the correct schedule and the
	// cancel-and-reschedule churn is skipped.
	schedRate  float64
	schedAlloc float64
}

// Spec returns the kernel descriptor.
func (h *Handle) Spec() *kern.Spec { return h.spec }

// Done reports whether the instance has completed (or was evicted).
func (h *Handle) Done() bool { return h.done }

// Evicted reports whether the instance was stopped by Evict rather than
// running to completion. Its Metrics are partial: they cover only the blocks
// executed before the eviction point.
func (h *Handle) Evicted() bool { return h.evicted }

// Metrics returns a copy of the instance's counters (final after Done).
func (h *Handle) Metrics() Metrics { return h.metrics }

// Progress returns completed blocks (the slateIdx the dispatch kernel
// carries across relaunches).
func (h *Handle) Progress() float64 { return h.blocksDone }

// SMRange returns the current designated range (Slate mode).
func (h *Handle) SMRange() (low, high int) { return h.opts.SMLow, h.opts.SMHigh }

// Engine drives kernel execution on one device.
type Engine struct {
	Dev   *device.Device
	Clock *vtime.Clock
	Model PerfModel

	// Workers bounds the goroutines used to fan per-kernel work inside a
	// single event: pass 1 of the computeRates fixpoint (model lookups +
	// demand computation) and the advanceProgress integration. <= 1 keeps
	// the hot path strictly serial. Results are bit-identical at any
	// setting — each kernel writes only its own index-assigned slots and
	// the cross-kernel folds (bus arbitration, L2 share update) stay
	// serial — so this is a pure wall-clock knob.
	Workers int

	// RescheduleEveryEvent disables the completion-event reschedule skip
	// so tests can measure the event churn it removes.
	RescheduleEveryEvent bool

	nextID     int
	running    []*Handle
	lastUpdate vtime.Time

	// scratch holds the per-recompute working buffers. recompute runs on
	// every simulation event, and without reuse these allocations dominate
	// the event loop's profile.
	scratch engineScratch
	sorter  prioSorter
}

// engineScratch is the reusable working set of allocate/computeRates.
type engineScratch struct {
	alloc, shares, demands, uncon, accessRates []float64
	snaps                                      []rateSnap
	order                                      []int
}

// rateSnap is one kernel's rate snapshot within the fixpoint.
type rateSnap struct {
	rate, dramPB, hit, throttle float64
}

// prioSorter orders hardware-kernel indices by priority without the
// per-call closure allocation of sort.Slice. Equal priorities fall back to
// kernel index, making the permutation unique (and therefore stable across
// sort-algorithm internals).
type prioSorter struct {
	order   []int
	running []*Handle
}

func (p *prioSorter) Len() int { return len(p.order) }
func (p *prioSorter) Less(a, b int) bool {
	pa := p.running[p.order[a]].opts.Priority
	pb := p.running[p.order[b]].opts.Priority
	if pa != pb {
		return pa < pb
	}
	return p.order[a] < p.order[b]
}
func (p *prioSorter) Swap(a, b int) { p.order[a], p.order[b] = p.order[b], p.order[a] }

// Fan gates. With every model entry warm the per-kernel pass-1 work is a few
// hundred nanoseconds and a goroutine handoff would dominate, so the fan
// engages only where it pays: a possible cold model build (milliseconds of
// trace synthesis and MRC sweeping) at any width, or a kernel set wide
// enough to amortize the handoff. Vars rather than consts so tests can
// lower them.
var (
	rateFanKernels    = 16
	advanceFanKernels = 16
)

// f64Scratch returns buf resized to n, reallocating only on growth. The
// caller is responsible for (re)initializing the contents.
func f64Scratch(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// fanKernels runs f(0..n-1) on min(e.Workers, n) goroutines, pulling indices
// from a shared counter. The caller guarantees f(i) touches only slot i.
func (e *Engine) fanKernels(n int, f func(i int)) {
	workers := e.Workers
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// New constructs an engine. The device must validate.
func New(dev *device.Device, clock *vtime.Clock, model PerfModel) *Engine {
	if err := dev.Validate(); err != nil {
		panic(err)
	}
	return &Engine{Dev: dev, Clock: clock, Model: model}
}

// Running returns the live instance count.
func (e *Engine) Running() int { return len(e.running) }

// Sync integrates every running kernel's progress up to the current virtual
// time so Progress and Metrics reads are current. Rates are unchanged; it is
// safe to call from any event callback.
func (e *Engine) Sync() { e.advanceProgress(e.Clock.Now()) }

// Launch starts a kernel instance now and returns its handle.
func (e *Engine) Launch(spec *kern.Spec, opts LaunchOpts) (*Handle, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.TaskSize <= 0 {
		opts.TaskSize = 10
	}
	if opts.Mode == SlateSched {
		if opts.SMLow < 0 || opts.SMHigh >= e.Dev.NumSMs || opts.SMLow > opts.SMHigh {
			return nil, fmt.Errorf("engine: invalid SM range [%d,%d] on %d-SM device", opts.SMLow, opts.SMHigh, e.Dev.NumSMs)
		}
	} else {
		opts.SMLow, opts.SMHigh = 0, e.Dev.NumSMs-1
	}
	if opts.Priority == 0 {
		opts.Priority = e.nextID + 1
	}
	resident := e.Dev.ResidentBlocks(spec.Shape())
	if resident == 0 {
		return nil, fmt.Errorf("engine: kernel %q block shape does not fit on an SM", spec.Name)
	}
	h := &Handle{
		id:            e.nextID,
		spec:          spec,
		opts:          opts,
		numBlocks:     float64(spec.NumBlocks()),
		warpsPerBlock: float64(spec.Shape().Warps()),
	}
	e.nextID++
	h.metrics.Launched = e.Clock.Now()
	e.running = append(e.running, h)
	e.recompute(e.Clock.Now())
	return h, nil
}

// OnComplete registers a callback fired when the instance finishes. If the
// instance already finished, the callback fires immediately.
func (e *Engine) OnComplete(h *Handle, fn func(vtime.Time)) {
	if h.done {
		fn(e.Clock.Now())
		return
	}
	h.onComplete = append(h.onComplete, fn)
}

// Resize changes a Slate instance's designated SM range. The instance pays
// the device's resize penalty (retreat, drain, relaunch) before progressing
// on the new range; its queue cursor carries over.
func (e *Engine) Resize(h *Handle, smLow, smHigh int) error {
	if h.done {
		return fmt.Errorf("engine: resize of completed kernel %q", h.spec.Name)
	}
	if h.opts.Mode != SlateSched {
		return fmt.Errorf("engine: resize requires Slate scheduling")
	}
	if smLow < 0 || smHigh >= e.Dev.NumSMs || smLow > smHigh {
		return fmt.Errorf("engine: invalid SM range [%d,%d]", smLow, smHigh)
	}
	now := e.Clock.Now()
	e.advanceProgress(now)
	h.opts.SMLow, h.opts.SMHigh = smLow, smHigh
	h.metrics.Resizes++
	h.pausedUntil = now.Add(vtime.FromSeconds(e.Dev.ResizeSeconds))
	e.Clock.At(h.pausedUntil, func(t vtime.Time) { e.recompute(t) })
	e.recompute(now)
	return nil
}

// Evict stops a running instance at a block boundary — the software
// analogue of the containment MPS cannot provide (§III): because Slate
// dispatches work in task-sized pulls from a queue, the runtime can simply
// stop granting tasks and reclaim the SM range at the next boundary. The
// instance is marked done (and Evicted), its partial Metrics are finalized
// and returned, its SM range frees immediately for co-runners, and its
// OnComplete callbacks do NOT fire — eviction is the caller's decision and
// the caller owns the aftermath (requeue, quarantine, abandon).
func (e *Engine) Evict(h *Handle) (Metrics, error) {
	if h.done {
		return h.metrics, fmt.Errorf("engine: evict of completed kernel %q", h.spec.Name)
	}
	now := e.Clock.Now()
	e.advanceProgress(now)
	// Stop at the enclosing block boundary: a block that has started finishes
	// (the queue pull is irrevocable, Listing 2), partial blocks do not count.
	h.blocksDone = math.Floor(h.blocksDone)
	if h.blocksDone > h.numBlocks {
		h.blocksDone = h.numBlocks
	}
	h.done = true
	h.evicted = true
	h.metrics.Completed = now
	if h.metrics.Busy > 0 {
		h.metrics.StallMemThrottle /= h.metrics.Busy.Seconds()
	}
	if h.completion != nil {
		e.Clock.Cancel(h.completion)
		h.completion = nil
	}
	if h.checkpoint != nil {
		e.Clock.Cancel(h.checkpoint)
		h.checkpoint = nil
	}
	for i, r := range e.running {
		if r == h {
			e.running = append(e.running[:i], e.running[i+1:]...)
			break
		}
	}
	// Reallocate: survivors see the freed SMs at once.
	e.recompute(now)
	return h.metrics, nil
}

// Stall freezes a running instance for d of virtual time: its allocation
// drops to zero and its progress stops, modeling a runaway kernel wedged in
// a retreat/relaunch cycle or an infinite loop. It is the engine-level fault
// injection the watchdog exists to catch. Stalling an instance again before
// the first stall elapses extends the stall.
func (e *Engine) Stall(h *Handle, d vtime.Duration) error {
	if h.done {
		return fmt.Errorf("engine: stall of completed kernel %q", h.spec.Name)
	}
	if d < 0 {
		return fmt.Errorf("engine: negative stall duration %d", d)
	}
	now := e.Clock.Now()
	e.advanceProgress(now)
	h.pausedUntil = now.Add(d)
	e.Clock.At(h.pausedUntil, func(t vtime.Time) { e.recompute(t) })
	e.recompute(now)
	return nil
}

// advanceProgress integrates every running kernel's progress and metrics
// from lastUpdate to now using the last computed rates. Each kernel's
// integration touches only its own handle, so wide kernel sets fan across
// Workers goroutines with bit-identical results.
func (e *Engine) advanceProgress(now vtime.Time) {
	dt := now.Sub(e.lastUpdate).Seconds()
	e.lastUpdate = now
	if dt <= 0 {
		return
	}
	if e.Workers > 1 && len(e.running) >= advanceFanKernels {
		e.fanKernels(len(e.running), func(i int) { e.advanceHandle(e.running[i], dt) })
		return
	}
	for _, h := range e.running {
		e.advanceHandle(h, dt)
	}
}

// advanceHandle integrates one kernel's progress over dt seconds.
func (e *Engine) advanceHandle(h *Handle, dt float64) {
	if h.rate <= 0 {
		return
	}
	blocks := h.rate * dt
	if rem := h.numBlocks - h.blocksDone; blocks > rem {
		blocks = rem
	}
	h.blocksDone += blocks
	ovh := 1.0
	if h.opts.Mode == SlateSched {
		ovh = 1 + e.Dev.InjectedInstrOverhead
	}
	h.metrics.FLOPs += blocks * h.spec.FLOPsPerBlock
	h.metrics.L2Bytes += blocks * h.spec.L2BytesPerBlock
	h.metrics.DRAMBytes += blocks * h.dramPerBlk
	h.metrics.Instr += blocks * h.spec.InstrPerBlock * ovh
	h.metrics.Busy += vtime.FromSeconds(dt)
	h.metrics.StallMemThrottle += h.memThrottle * dt
	h.metrics.SMSecondsIntegral += h.smAlloc * dt
	if h.opts.Mode == SlateSched && h.spec.NumBlocks() > 0 {
		h.metrics.Atomics = int64(h.blocksDone) / int64(h.opts.TaskSize)
	}
}

// recompute advances progress to now, retires finished kernels, reallocates
// SMs, recomputes rates, and reschedules completion events.
func (e *Engine) recompute(now vtime.Time) {
	e.advanceProgress(now)

	// Retire finished kernels.
	var still []*Handle
	var finished []*Handle
	for _, h := range e.running {
		if h.numBlocks-h.blocksDone < 1e-6 {
			h.blocksDone = h.numBlocks
			h.done = true
			h.metrics.Completed = now
			if h.metrics.Busy > 0 {
				h.metrics.StallMemThrottle /= h.metrics.Busy.Seconds()
			}
			if h.completion != nil {
				e.Clock.Cancel(h.completion)
				h.completion = nil
			}
			if h.checkpoint != nil {
				e.Clock.Cancel(h.checkpoint)
				h.checkpoint = nil
			}
			finished = append(finished, h)
		} else {
			still = append(still, h)
		}
	}
	e.running = still

	// Completion callbacks may launch or resize kernels, re-entering
	// recompute; run them after state is consistent.
	for _, h := range finished {
		for _, fn := range h.onComplete {
			fn(now)
		}
	}
	if len(finished) > 0 {
		// Callbacks may have changed the running set and already
		// recomputed; recompute once more to be safe (idempotent at fixed
		// time).
		e.advanceProgress(e.Clock.Now())
	}

	e.computeRates(e.Clock.Now())

	// Reschedule completion events and tail-reallocation checkpoints.
	for _, h := range e.running {
		// Drop references to events that already fired: the clock recycles
		// their allocations once the callback returns, so cancelling a
		// stale pointer later could hit an unrelated reissued event.
		if h.completion != nil && !h.completion.Pending() {
			h.completion = nil
		}
		if h.checkpoint != nil && !h.checkpoint.Pending() {
			h.checkpoint = nil
		}
		// Skip the cancel-and-reschedule when nothing about this kernel's
		// schedule changed — the common case when an unrelated co-runner
		// event triggered the recompute. Rate is a step function of
		// blocksDone for a fixed co-runner set, and under a constant rate
		// the pending completion's absolute time (now + remaining/rate) is
		// invariant, so a bitwise-unchanged (rate, allocation) pair means
		// the pending events still describe the correct schedule.
		if !e.RescheduleEveryEvent && h.completion != nil &&
			h.rate == h.schedRate && h.smAlloc == h.schedAlloc {
			continue
		}
		if h.completion != nil {
			e.Clock.Cancel(h.completion)
			h.completion = nil
		}
		if h.checkpoint != nil {
			e.Clock.Cancel(h.checkpoint)
			h.checkpoint = nil
		}
		h.schedRate, h.schedAlloc = h.rate, h.smAlloc
		if h.rate <= 0 {
			continue
		}
		rem := h.numBlocks - h.blocksDone
		dt := vtime.FromSeconds(rem / h.rate)
		if dt < 1 {
			dt = 1
		}
		h.completion = e.Clock.After(dt, func(t vtime.Time) { e.recompute(t) })

		// Parallelism drops when the kernel enters its final wave, and
		// leftover allocation shifts as a hardware kernel drains; refine
		// with checkpoints. The wave boundary is exact; the geometric
		// halving refines continuous leftover reallocation for co-runners.
		var ck vtime.Duration
		if boundary := e.lastWaveBoundary(h, h.smAlloc); h.blocksDone < boundary {
			ck = vtime.FromSeconds((boundary - h.blocksDone) / h.rate)
		} else if len(e.running) > 1 {
			ck = vtime.FromSeconds(rem / (2 * h.rate))
		}
		if ck >= 100 && ck < dt {
			h.checkpoint = e.Clock.After(ck, func(t vtime.Time) { e.recompute(t) })
		}
	}
}

// allocate returns each running kernel's SM allocation in SM units.
// Slate instances own their designated ranges. Hardware instances share the
// remaining SMs under the leftover policy: in priority order, each takes the
// SMs needed to hold its remaining blocks, the next takes what is left —
// which for full-size kernels means the later kernel only runs during the
// earlier one's tail (§V-A2).
func (e *Engine) allocate(now vtime.Time) []float64 {
	e.scratch.alloc = f64Scratch(e.scratch.alloc, len(e.running))
	alloc := e.scratch.alloc
	free := float64(e.Dev.NumSMs)

	// Slate partitions first (disjoint by construction of the scheduler).
	for i, h := range e.running {
		if h.opts.Mode != SlateSched {
			continue
		}
		if now < h.pausedUntil {
			alloc[i] = 0
			continue
		}
		span := float64(h.opts.SMHigh - h.opts.SMLow + 1)
		alloc[i] = span
		free -= span
	}
	if free < 0 {
		free = 0
	}

	// Hardware kernels in priority order take what their remaining blocks
	// can fill, from what is free.
	order := e.scratch.order[:0]
	for i, h := range e.running {
		if h.opts.Mode == HardwareSched {
			order = append(order, i)
		}
	}
	e.scratch.order = order
	e.sorter.order, e.sorter.running = order, e.running
	sort.Sort(&e.sorter)
	for _, i := range order {
		h := e.running[i]
		if free <= 0 || now < h.pausedUntil {
			alloc[i] = 0
			continue
		}
		// The hardware scheduler distributes blocks breadth-first, so a
		// kernel's SM footprint is one SM per in-flight block until it runs
		// out of blocks — even a small kernel touches every SM. That is why
		// the leftover policy almost never coruns these workloads (§V-A2):
		// SMs only free up when the in-flight wave shrinks below the SM
		// count at the very end of a kernel.
		needSMs := e.activeWorkers(h, free)
		if needSMs > free {
			needSMs = free
		}
		alloc[i] = needSMs
		free -= needSMs
	}
	return alloc
}

// computeRates runs the coupled rate/L2-share fixpoint and stores each
// running kernel's snapshot. Pass 1 — the per-kernel model lookups and
// demand computation, where any expensive cold model build happens — writes
// only index-assigned slots, so it fans across Workers goroutines with
// bit-identical results; the cross-kernel folds (bus arbitration in pass 2,
// the L2 share update in pass 3) stay serial.
func (e *Engine) computeRates(now vtime.Time) {
	n := len(e.running)
	if n == 0 {
		return
	}
	alloc := e.allocate(now)

	// Initial equal L2 shares.
	e.scratch.shares = f64Scratch(e.scratch.shares, n)
	shares := e.scratch.shares
	for i := range shares {
		shares[i] = 1.0 / float64(n)
	}

	if cap(e.scratch.snaps) < n {
		e.scratch.snaps = make([]rateSnap, n)
	}
	snaps := e.scratch.snaps[:n]
	e.scratch.demands = f64Scratch(e.scratch.demands, n)
	e.scratch.uncon = f64Scratch(e.scratch.uncon, n)
	e.scratch.accessRates = f64Scratch(e.scratch.accessRates, n)
	demands, uncon, accessRates := e.scratch.demands, e.scratch.uncon, e.scratch.accessRates

	l2Size := float64(e.Dev.L2.SizeBytes)
	// Bus interference applies only among kernels that actually hold SMs.
	sharers := 0
	for i := range e.running {
		if alloc[i] > 0 {
			sharers++
		}
	}

	// Pass 1 body for kernel i: reads shares[i]/alloc[i] and the shared
	// read-only device/model, writes slots i of snaps/demands/uncon.
	passOne := func(i int) {
		h := e.running[i]
		s := alloc[i]
		if s <= 0 {
			snaps[i] = rateSnap{}
			return
		}
		hit := e.Model.HitRate(h.spec, h.opts.Mode, h.opts.TaskSize, shares[i]*l2Size)
		runB := e.Model.MeanRunBytes(h.spec, h.opts.Mode, h.opts.TaskSize)
		h.modelWarm = true
		runEff := e.Dev.DRAM.RunEfficiency(runB)
		dramPB := h.spec.L2BytesPerBlock * (1 - hit)

		active := e.activeWorkers(h, s)
		// Active workers spread across the allocated SMs; once fewer
		// workers than SMs remain, each active block has an SM to
		// itself and the kernel effectively occupies only `occ` SMs.
		occ := s
		if active < occ {
			occ = active
		}
		if occ <= 0 {
			snaps[i] = rateSnap{}
			return
		}
		warpsPerSM := active * h.warpsPerBlock / occ
		mlp := h.spec.MemMLP
		if mlp <= 0 {
			mlp = 1
		}
		cUtil := e.Dev.SM.ComputeUtil(warpsPerSM)
		mUtil := e.Dev.SM.MemUtil(warpsPerSM * mlp)

		ovh := 1.0
		if h.opts.Mode == SlateSched {
			ovh = 1 + e.Dev.InjectedInstrOverhead
		}
		ops := h.spec.OpsPerBlock
		if ops <= 0 {
			ops = h.spec.FLOPsPerBlock
		}
		computeRate := math.Inf(1)
		if ops > 0 {
			rc := occ * e.Dev.SM.PeakFLOPS() * h.spec.ComputeEff * cUtil
			computeRate = rc / (ops * ovh)
		}
		l2Rate := math.Inf(1)
		if h.spec.L2BytesPerBlock > 0 {
			rl2 := e.Dev.DRAM.L2Ceiling(int(math.Ceil(occ)), e.Dev.NumSMs)
			l2Rate = rl2 / h.spec.L2BytesPerBlock
		}
		// Service floor: dispatch (hardware) or queue atomic (Slate),
		// amortized over active workers, plus the block latency floor.
		floor := e.Dev.BlockLatencySeconds
		var serialRate = math.Inf(1)
		if h.opts.Mode == HardwareSched {
			floor += e.Dev.BlockDispatchSeconds
		} else {
			floor += e.Dev.AtomicSerialSeconds / float64(h.opts.TaskSize)
			// Global queue serialization: one atomic at a time.
			serialRate = float64(h.opts.TaskSize) / e.Dev.AtomicSerialSeconds
		}
		latRate := active / floor

		r := math.Min(computeRate, math.Min(l2Rate, math.Min(latRate, serialRate)))
		uncon[i] = r
		snaps[i] = rateSnap{hit: hit, dramPB: dramPB}
		if dramPB > 0 {
			memEff := h.spec.MemEff
			if memEff <= 0 {
				memEff = 1
			}
			dramCeil := e.Dev.DRAM.StreamCeiling(int(math.Ceil(occ))) * runEff * mUtil * memEff
			if sharers > 1 {
				// Sharing the bus with another kernel's stream breaks
				// row locality for both (memsys.CorunEfficiency).
				dramCeil *= e.Dev.DRAM.CorunEff()
			}
			demands[i] = math.Min(r*dramPB, dramCeil)
		}
	}

	for iter := 0; iter < 4; iter++ {
		// Pass 1: per-kernel unconstrained demands. Fan only when it pays:
		// a cold model entry may need building (the multi-millisecond
		// case), or the kernel set is wide enough to amortize handoffs.
		for i := range demands {
			demands[i], uncon[i], accessRates[i] = 0, 0, 0
		}
		fan := false
		if e.Workers > 1 && n > 1 {
			fan = n >= rateFanKernels
			if !fan {
				for _, h := range e.running {
					if !h.modelWarm {
						fan = true
						break
					}
				}
			}
		}
		if fan {
			e.fanKernels(n, passOne)
		} else {
			for i := 0; i < n; i++ {
				passOne(i)
			}
		}

		// Pass 2: arbitrate the shared bus and finalize rates.
		grants := e.Dev.DRAM.Arbitrate(demands)
		totalAccess := 0.0
		for i, h := range e.running {
			if alloc[i] <= 0 {
				continue
			}
			r := uncon[i]
			throttle := 0.0
			if snaps[i].dramPB > 0 {
				dramRate := grants[i] / snaps[i].dramPB
				if dramRate < r {
					throttle = 1 - dramRate/r
					r = dramRate
				}
			}
			snaps[i].rate = r
			snaps[i].throttle = throttle
			accessRates[i] = r * h.spec.L2BytesPerBlock
			totalAccess += accessRates[i]
		}

		// Pass 3: update L2 shares by access demand for the next iteration.
		if totalAccess > 0 {
			for i := range shares {
				shares[i] = accessRates[i] / totalAccess
			}
		}
	}

	for i, h := range e.running {
		h.rate = snaps[i].rate
		h.dramPerBlk = snaps[i].dramPB
		h.hitRate = snaps[i].hit
		h.memThrottle = snaps[i].throttle
		h.smAlloc = alloc[i]
	}
}

// activeWorkers returns how many block slots are actually processing work —
// the tail/imbalance model. Workers drain the queue in waves of `capacity`
// scheduling units (tasks under Slate, blocks under hardware) that progress
// in lockstep, so parallelism is capacity through the full waves and drops
// to the final wave's size for the tail. A kernel whose task count is below
// capacity runs a single underpopulated wave for its entire execution —
// Fig. 5's BlackScholes load-imbalance case.
func (e *Engine) activeWorkers(h *Handle, smAlloc float64) float64 {
	resident := float64(e.Dev.ResidentBlocks(h.spec.Shape()))
	capacity := math.Floor(smAlloc * resident)
	if capacity < 1 {
		capacity = 1
	}
	unit := 1.0
	if h.opts.Mode == SlateSched {
		unit = float64(h.opts.TaskSize)
	}
	unitsTotal := math.Ceil(h.numBlocks / unit)
	fullWaves := math.Floor(unitsTotal / capacity)
	lastWave := unitsTotal - fullWaves*capacity
	if lastWave == 0 {
		lastWave = capacity
		fullWaves--
	}
	boundary := fullWaves * capacity * unit // blocks completed when the last wave begins
	if h.blocksDone >= boundary {
		return lastWave
	}
	return capacity
}

// lastWaveBoundary returns the blocksDone value at which the kernel enters
// its final, possibly underpopulated wave (see activeWorkers).
func (e *Engine) lastWaveBoundary(h *Handle, smAlloc float64) float64 {
	resident := float64(e.Dev.ResidentBlocks(h.spec.Shape()))
	capacity := math.Floor(smAlloc * resident)
	if capacity < 1 {
		capacity = 1
	}
	unit := 1.0
	if h.opts.Mode == SlateSched {
		unit = float64(h.opts.TaskSize)
	}
	unitsTotal := math.Ceil(h.numBlocks / unit)
	fullWaves := math.Floor(unitsTotal / capacity)
	if unitsTotal-fullWaves*capacity == 0 {
		fullWaves--
	}
	if fullWaves < 0 {
		fullWaves = 0
	}
	return fullWaves * capacity * unit
}
