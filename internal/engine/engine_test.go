package engine

import (
	"math"
	"testing"

	"slate/internal/device"
	"slate/internal/kern"
	"slate/internal/vtime"
)

// computeKernel returns a compute-bound kernel: ~2.4e11 FLOPs, negligible
// memory traffic.
func computeKernel(name string, blocks int) *kern.Spec {
	return &kern.Spec{
		Name:            name,
		Grid:            kern.D1(blocks),
		BlockDim:        kern.D1(256),
		FLOPsPerBlock:   1e8,
		InstrPerBlock:   5e7,
		L2BytesPerBlock: 1e4,
		ComputeEff:      0.8,
	}
}

// memoryKernel returns a DRAM-bound kernel: blocks × 1 MiB of streaming
// traffic with no reuse.
func memoryKernel(name string, blocks int) *kern.Spec {
	return &kern.Spec{
		Name:            name,
		Grid:            kern.D1(blocks),
		BlockDim:        kern.D1(256),
		FLOPsPerBlock:   1e5,
		InstrPerBlock:   1e6,
		L2BytesPerBlock: 1 << 20,
		ComputeEff:      0.8,
		MemMLP:          8, // deeply pipelined streaming loads
	}
}

func staticModel() *StaticModel {
	return &StaticModel{DefaultHit: 0, DefaultRunBytes: 1 << 20, SlateRunFactor: 1}
}

func newEngine() (*Engine, *vtime.Clock) {
	clk := vtime.NewClock()
	e := New(device.TitanXp(), clk, staticModel())
	return e, clk
}

func titanXpCorunEff(e *Engine) float64 { return e.Dev.DRAM.CorunEff() }

func run(t *testing.T, clk *vtime.Clock) {
	t.Helper()
	if n := clk.Run(2_000_000); n >= 2_000_000 {
		t.Fatal("event runaway: simulation did not converge")
	}
}

func TestSoloComputeBoundTime(t *testing.T) {
	e, clk := newEngine()
	spec := computeKernel("cb", 2400)
	h, err := e.Launch(spec, LaunchOpts{Mode: HardwareSched})
	if err != nil {
		t.Fatal(err)
	}
	run(t, clk)
	if !h.Done() {
		t.Fatal("kernel did not complete")
	}
	m := h.Metrics()
	// Expected: 2400*1e8 FLOPs / (30 SM * 405 GF * 0.8) ≈ 24.7 ms.
	wantSec := spec.TotalFLOPs() / (e.Dev.PeakFLOPS() * 0.8)
	got := m.Duration().Seconds()
	if math.Abs(got-wantSec)/wantSec > 0.05 {
		t.Fatalf("compute-bound duration = %.3fms, want ≈%.3fms", got*1e3, wantSec*1e3)
	}
	if m.FLOPs != spec.TotalFLOPs() {
		t.Fatalf("FLOPs = %v, want %v", m.FLOPs, spec.TotalFLOPs())
	}
	if m.StallMemThrottle > 0.01 {
		t.Fatalf("compute-bound kernel reports %.1f%% memory throttle", m.StallMemThrottle*100)
	}
}

func TestSoloMemoryBoundTime(t *testing.T) {
	e, clk := newEngine()
	spec := memoryKernel("mb", 2400)
	h, err := e.Launch(spec, LaunchOpts{Mode: HardwareSched})
	if err != nil {
		t.Fatal(err)
	}
	run(t, clk)
	if !h.Done() {
		t.Fatal("kernel did not complete")
	}
	m := h.Metrics()
	// Hit rate 0, run bytes 1MiB → efficiency 1 → full stream ceiling.
	wantSec := spec.TotalL2Bytes() / e.Dev.DRAM.EffectivePeak()
	got := m.Duration().Seconds()
	// The drain tail (active workers < capacity) adds a few percent.
	if got < wantSec*0.98 || got > wantSec*1.12 {
		t.Fatalf("memory-bound duration = %.3fms, want ≈%.3fms", got*1e3, wantSec*1e3)
	}
	if m.StallMemThrottle < 0.2 {
		t.Fatalf("memory-bound kernel reports only %.1f%% throttle", m.StallMemThrottle*100)
	}
	if bw := m.DRAMBW(); math.Abs(bw-e.Dev.DRAM.EffectivePeak()/1e9)/bw > 0.05 {
		t.Fatalf("DRAM BW = %.1f GB/s, want ≈%.1f", bw, e.Dev.DRAM.EffectivePeak()/1e9)
	}
}

// Fig. 1's mechanism: restricting a streaming kernel to fewer SMs caps its
// bandwidth linearly below the knee and not at all above it.
func TestStreamBandwidthSaturatesWithSMs(t *testing.T) {
	var bw [31]float64
	for _, sms := range []int{1, 3, 6, 9, 15, 30} {
		e, clk := newEngine()
		spec := memoryKernel("stream", 2400)
		h, err := e.Launch(spec, LaunchOpts{Mode: SlateSched, SMLow: 0, SMHigh: sms - 1, TaskSize: 10})
		if err != nil {
			t.Fatal(err)
		}
		run(t, clk)
		bw[sms] = h.Metrics().DRAMBW()
	}
	if !(bw[1] < bw[3] && bw[3] < bw[6] && bw[6] < bw[9]) {
		t.Fatalf("bandwidth not increasing below knee: %v", bw)
	}
	if rel := (bw[30] - bw[9]) / bw[9]; rel > 0.02 {
		t.Fatalf("bandwidth grew %.1f%% past the knee; should be flat", rel*100)
	}
	if bw[1] > bw[9]/4 {
		t.Fatalf("single SM reaches %.0f of %.0f GB/s; knee too soft", bw[1], bw[9])
	}
}

// Complementary co-run: a compute-bound and a memory-bound kernel on
// disjoint partitions finish together faster than back-to-back solo runs.
func TestSlateCorunBeatsSerial(t *testing.T) {
	// Solo times.
	solo := func(spec *kern.Spec) float64 {
		e, clk := newEngine()
		h, err := e.Launch(spec, LaunchOpts{Mode: HardwareSched})
		if err != nil {
			t.Fatal(err)
		}
		run(t, clk)
		return h.Metrics().Duration().Seconds()
	}
	tc := solo(computeKernel("cb", 2400))
	tm := solo(memoryKernel("mb", 2400))

	// Co-run: memory kernel on 12 SMs (past the knee), compute on 18; when
	// the memory kernel completes, the scheduler grows the compute kernel to
	// the whole device — the dynamic resizing of §III-C.
	e, clk := newEngine()
	hm, err := e.Launch(memoryKernel("mb", 2400), LaunchOpts{Mode: SlateSched, SMLow: 0, SMHigh: 11})
	if err != nil {
		t.Fatal(err)
	}
	hc, err := e.Launch(computeKernel("cb", 2400), LaunchOpts{Mode: SlateSched, SMLow: 12, SMHigh: 29})
	if err != nil {
		t.Fatal(err)
	}
	e.OnComplete(hm, func(vtime.Time) {
		if err := e.Resize(hc, 0, 29); err != nil {
			t.Error(err)
		}
	})
	run(t, clk)
	corun := math.Max(hm.Metrics().Completed.Sub(0).Seconds(), hc.Metrics().Completed.Sub(0).Seconds())
	serial := tc + tm
	if corun >= serial {
		t.Fatalf("corun %.3fms not better than serial %.3fms", corun*1e3, serial*1e3)
	}
	// The memory kernel keeps its 12-SM stream ceiling but pays the shared
	// -bus interference factor (CorunEfficiency ≈ 0.68) while the partner
	// is live — it must not slow beyond that.
	maxSlow := 1/titanXpCorunEff(e) + 0.10
	if got := hm.Metrics().Duration().Seconds() / tm; got > maxSlow {
		t.Fatalf("memory kernel slowed %.2fx in corun, want ≤%.2fx (bus interference only)", got, maxSlow)
	}
}

// MPS's leftover policy: hardware blocks spread breadth-first across all
// SMs, so a kernel with full waves leaves no leftover and the second kernel
// serializes behind it — the paper's observation that MPS "basically runs
// these kernels consecutively".
func TestHardwareLeftoverSerializesFullKernels(t *testing.T) {
	e, clk := newEngine()
	a, err := e.Launch(memoryKernel("a", 2400), LaunchOpts{Mode: HardwareSched, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Launch(computeKernel("b", 2400), LaunchOpts{Mode: HardwareSched, Priority: 2})
	if err != nil {
		t.Fatal(err)
	}
	soloA := memoryKernel("a", 2400).TotalL2Bytes() / e.Dev.DRAM.EffectivePeak()
	// Halfway through A, B must have made no progress.
	clk.After(vtime.FromSeconds(soloA/2), func(vtime.Time) {
		e.Sync()
		if p := b.Progress(); p > 0 {
			t.Errorf("B progressed %.0f blocks while A held every SM", p)
		}
	})
	run(t, clk)
	if !a.Done() || !b.Done() {
		t.Fatal("kernels did not finish")
	}
	soloB := computeKernel("b", 2400).TotalFLOPs() / (e.Dev.PeakFLOPS() * 0.8)
	makespan := math.Max(a.Metrics().Completed.Sub(0).Seconds(), b.Metrics().Completed.Sub(0).Seconds())
	if makespan > (soloA+soloB)*1.05 || makespan < (soloA+soloB)*0.93 {
		t.Fatalf("leftover makespan %.3f, want ≈serial %.3f", makespan, soloA+soloB)
	}
}

// When the leading kernel's final wave occupies fewer SMs than the device
// has, the trailing kernel starts on the leftovers before the leader
// finishes — the only concurrency the leftover policy permits.
func TestHardwareLeftoverTailOverlap(t *testing.T) {
	e, clk := newEngine()
	// 2170 blocks = 9 full waves of 240 + a final wave of only 10 blocks:
	// during the tail, 20 SMs are leftover.
	a, err := e.Launch(memoryKernel("a", 2170), LaunchOpts{Mode: HardwareSched, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Launch(computeKernel("b", 2400), LaunchOpts{Mode: HardwareSched, Priority: 2})
	if err != nil {
		t.Fatal(err)
	}
	overlapped := false
	e.OnComplete(a, func(vtime.Time) {
		e.Sync()
		overlapped = b.Progress() > 0
	})
	run(t, clk)
	if !overlapped {
		t.Fatal("no tail overlap: B idle until A fully completed")
	}
}

func TestResizePreservesProgressAndCostsPenalty(t *testing.T) {
	e, clk := newEngine()
	spec := memoryKernel("rs", 2400)
	h, err := e.Launch(spec, LaunchOpts{Mode: SlateSched, SMLow: 0, SMHigh: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Let ~40% of the work complete, then grow to the whole device.
	half := vtime.FromSeconds(spec.TotalL2Bytes() / e.Dev.DRAM.EffectivePeak() * 0.4)
	clk.After(half, func(vtime.Time) {
		e.Sync()
		before := h.Progress()
		if before <= 0 || before >= h.numBlocks {
			t.Errorf("unexpected progress %v at resize", before)
		}
		if err := e.Resize(h, 0, 29); err != nil {
			t.Error(err)
		}
		if h.Progress() < before {
			t.Error("resize lost progress")
		}
	})
	run(t, clk)
	if !h.Done() {
		t.Fatal("kernel did not finish after resize")
	}
	if h.Metrics().Resizes != 1 {
		t.Fatalf("resizes = %d, want 1", h.Metrics().Resizes)
	}
	// Growing from 9 SMs mid-run should not change much for a memory-bound
	// kernel (9 SMs is already at the knee) — duration ≈ solo + penalty.
	want := spec.TotalL2Bytes() / e.Dev.DRAM.EffectivePeak()
	got := h.Metrics().Duration().Seconds()
	if got < want || got > want*1.25 {
		t.Fatalf("resized duration %.3fms, want within [%.3f, %.3f]ms", got*1e3, want*1e3, want*1.25*1e3)
	}
}

func TestResizeShrinkSlowsKernel(t *testing.T) {
	e, clk := newEngine()
	spec := computeKernel("shrink", 4800)
	h, err := e.Launch(spec, LaunchOpts{Mode: SlateSched, SMLow: 0, SMHigh: 29})
	if err != nil {
		t.Fatal(err)
	}
	soloDur := spec.TotalFLOPs() / (e.Dev.PeakFLOPS() * 0.8 / (1 + e.Dev.InjectedInstrOverhead))
	clk.After(vtime.FromSeconds(soloDur*0.25), func(vtime.Time) {
		if err := e.Resize(h, 0, 14); err != nil {
			t.Error(err)
		}
	})
	run(t, clk)
	got := h.Metrics().Duration().Seconds()
	// 25% at full speed + 75% at half speed → ≈1.75× solo.
	if got < soloDur*1.5 || got > soloDur*2.0 {
		t.Fatalf("shrunk duration %.3fms, want ≈1.75×solo (%.3fms)", got*1e3, soloDur*1.75*1e3)
	}
}

func TestOnCompleteFires(t *testing.T) {
	e, clk := newEngine()
	h, err := e.Launch(computeKernel("cb", 240), LaunchOpts{Mode: HardwareSched})
	if err != nil {
		t.Fatal(err)
	}
	fired := vtime.Time(-1)
	e.OnComplete(h, func(now vtime.Time) { fired = now })
	run(t, clk)
	if fired < 0 {
		t.Fatal("completion callback did not fire")
	}
	if fired != h.Metrics().Completed {
		t.Fatalf("callback at %v, completion at %v", fired, h.Metrics().Completed)
	}
	// Registering after completion fires immediately.
	fired2 := false
	e.OnComplete(h, func(vtime.Time) { fired2 = true })
	if !fired2 {
		t.Fatal("post-completion callback did not fire immediately")
	}
}

// Tiny blocks with task size 1 serialize on the queue atomic; task size 10
// runs much faster (Fig. 5's GS curve).
func TestAtomicSerializationVsTaskSize(t *testing.T) {
	tiny := &kern.Spec{
		Name:            "tiny",
		Grid:            kern.D1(2_000_000),
		BlockDim:        kern.D1(64),
		FLOPsPerBlock:   1e3,
		InstrPerBlock:   1e3,
		L2BytesPerBlock: 256,
		ComputeEff:      0.8,
	}
	durs := map[int]float64{}
	for _, task := range []int{1, 10} {
		e, clk := newEngine()
		h, err := e.Launch(tiny, LaunchOpts{Mode: SlateSched, SMLow: 0, SMHigh: 29, TaskSize: task})
		if err != nil {
			t.Fatal(err)
		}
		run(t, clk)
		durs[task] = h.Metrics().Duration().Seconds()
	}
	if durs[10] >= durs[1]*0.6 {
		t.Fatalf("task grouping gained too little: task1=%.3fs task10=%.3fs", durs[1], durs[10])
	}
}

func TestLaunchValidation(t *testing.T) {
	e, _ := newEngine()
	if _, err := e.Launch(computeKernel("x", 100), LaunchOpts{Mode: SlateSched, SMLow: 5, SMHigh: 2}); err == nil {
		t.Fatal("inverted SM range accepted")
	}
	if _, err := e.Launch(computeKernel("x", 100), LaunchOpts{Mode: SlateSched, SMLow: 0, SMHigh: 30}); err == nil {
		t.Fatal("out-of-device SM range accepted")
	}
	bad := computeKernel("bad", 100)
	bad.ComputeEff = 0
	if _, err := e.Launch(bad, LaunchOpts{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	huge := computeKernel("huge", 100)
	huge.SharedMemBytes = 1 << 20
	if _, err := e.Launch(huge, LaunchOpts{}); err == nil {
		t.Fatal("unfittable block shape accepted")
	}
}

func TestResizeValidation(t *testing.T) {
	e, clk := newEngine()
	h, _ := e.Launch(computeKernel("x", 240), LaunchOpts{Mode: HardwareSched})
	if err := e.Resize(h, 0, 10); err == nil {
		t.Fatal("resize of hardware-scheduled kernel accepted")
	}
	hs, _ := e.Launch(computeKernel("y", 240), LaunchOpts{Mode: SlateSched, SMLow: 0, SMHigh: 29})
	if err := e.Resize(hs, 10, 5); err == nil {
		t.Fatal("inverted resize range accepted")
	}
	run(t, clk)
	if err := e.Resize(hs, 0, 29); err == nil {
		t.Fatal("resize of completed kernel accepted")
	}
}

func TestDeterminism(t *testing.T) {
	durations := func() []float64 {
		e, clk := newEngine()
		h1, _ := e.Launch(memoryKernel("a", 2400), LaunchOpts{Mode: SlateSched, SMLow: 0, SMHigh: 11})
		h2, _ := e.Launch(computeKernel("b", 2400), LaunchOpts{Mode: SlateSched, SMLow: 12, SMHigh: 29})
		run(t, clk)
		return []float64{h1.Metrics().Duration().Seconds(), h2.Metrics().Duration().Seconds()}
	}
	a, b := durations(), durations()
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestIPCAndBWMetricsPositive(t *testing.T) {
	e, clk := newEngine()
	h, _ := e.Launch(memoryKernel("m", 1200), LaunchOpts{Mode: HardwareSched})
	run(t, clk)
	m := h.Metrics()
	if m.IPC(e.Dev.SM.ClockHz) <= 0 {
		t.Fatal("IPC not positive")
	}
	if m.AccessBW() <= 0 || m.GFLOPS() <= 0 {
		t.Fatal("bandwidth/FLOPS metrics not positive")
	}
	if m.Busy <= 0 {
		t.Fatal("busy time not positive")
	}
}
