package engine

import (
	"math"
	"testing"

	"slate/internal/cache"
	"slate/internal/device"
	"slate/internal/kern"
	"slate/internal/traces"
)

// paritySpecs covers every trace-pattern shape in internal/traces at model
// scale: streaming (with and without a strided write stream), shared-reuse
// row sweeps, tiled panel reuse, and scattered random reads.
func paritySpecs() []*kern.Spec {
	mk := func(name string, p traces.BlockPattern) *kern.Spec {
		return &kern.Spec{
			Name: name, Grid: kern.D1(p.NumBlocks()), BlockDim: kern.D1(64),
			FLOPsPerBlock: 1e4, InstrPerBlock: 1e4, L2BytesPerBlock: 32 << 10,
			ComputeEff: 0.1, Pattern: p,
		}
	}
	return []*kern.Spec{
		mk("streaming", traces.Streaming{Blocks: 2048, BytesPerBlock: 32 << 10, LineBytes: 64}),
		mk("strided", traces.Streaming{
			Blocks: 2048, BytesPerBlock: 16 << 10, LineBytes: 64,
			WriteStride: 8 << 10, WriteBytes: 16 << 10, WriteBase: 1 << 30,
		}),
		mk("rowsweep", traces.RowSweep{
			Blocks: 2048, PivotBytes: 4096, SliceBytes: 28 << 10,
			SliceOverlap: 8 << 10, LineBytes: 64, RowBase: 1 << 22,
		}),
		mk("tiled", traces.Tiled{GridX: 32, GridY: 32, PanelBytes: 32 << 10, LineBytes: 64, BBase: 1 << 30}),
		mk("random", traces.Random{
			Blocks: 2048, BytesPerBlock: 24 << 10, TableBytes: 2 << 20,
			TableReads: 128, LineBytes: 64, TableBase: 1 << 30,
		}),
	}
}

// Property: at every mrcSizes capacity, under both execution orders, the
// one-pass reuse-distance curve deviates from the legacy set-associative
// oracle by at most cache.MRCDeviationBound. Runs the one-pass model with
// BuildWorkers > 1 so `go test -race` exercises the sharded counting phase.
func TestTraceModelOnePassMatchesOracle(t *testing.T) {
	for _, spec := range paritySpecs() {
		onepass := NewTraceModel(device.TitanXp())
		onepass.BuildWorkers = 4
		oracle := NewTraceModel(device.TitanXp())
		oracle.LegacyMRC = true
		oracle.BuildWorkers = 4
		for _, mode := range []Mode{HardwareSched, SlateSched} {
			sizes, got := onepass.MissRatioCurve(spec, mode, 10)
			_, want := oracle.MissRatioCurve(spec, mode, 10)
			for i := range sizes {
				if d := math.Abs(got[i] - want[i]); d > cache.MRCDeviationBound {
					t.Errorf("%s %v @ %d KiB: one-pass %.4f vs oracle %.4f (Δ %.4f > %.3f)",
						spec.Name, mode, sizes[i]>>10, got[i], want[i], d, cache.MRCDeviationBound)
				}
			}
		}
	}
}
