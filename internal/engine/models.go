package engine

import (
	"sync"

	"slate/internal/cache"
	"slate/internal/device"
	"slate/internal/kern"
	"slate/internal/traces"
)

// ModelVersion identifies the generation of the trace-driven locality model.
// It participates in every content-addressed cache key that outlives a
// single model instance (persisted profile tables): bump it whenever trace
// assembly, the cache simulation, or the run statistics change meaning, so
// results cached under an older model are never mistaken for current ones.
//
// Version 2: miss-ratio curves moved from eight independent set-associative
// LRU simulations to the single-pass fully-associative reuse-distance engine
// (cache.ReuseDistanceMRC). Profiles persisted under version 1 are
// auto-invalidated on load and re-measured.
const ModelVersion = 2

// StaticModel is a PerfModel returning fixed parameters, for tests and for
// kernels whose locality is known analytically. Per-kernel overrides are
// keyed by kernel name.
type StaticModel struct {
	// DefaultHit and DefaultRunBytes apply when no override exists.
	DefaultHit      float64
	DefaultRunBytes float64
	// SlateHitBonus is added to the hit rate under SlateSched (in-order
	// execution), clamped to [0,1].
	SlateHitBonus float64
	// SlateRunFactor multiplies run bytes under SlateSched.
	SlateRunFactor float64
	// Hit and RunBytes override per kernel name.
	Hit      map[string]float64
	RunBytes map[string]float64
}

// HitRate implements PerfModel. The supplied l2Bytes scales the hit rate
// linearly below the full cache (a crude MRC), which suffices for unit
// tests.
func (m *StaticModel) HitRate(spec *kern.Spec, mode Mode, taskSize int, l2Bytes float64) float64 {
	h := m.DefaultHit
	if v, ok := m.Hit[spec.Name]; ok {
		h = v
	}
	if mode == SlateSched {
		h += m.SlateHitBonus
	}
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return h
}

// MeanRunBytes implements PerfModel.
func (m *StaticModel) MeanRunBytes(spec *kern.Spec, mode Mode, taskSize int) float64 {
	r := m.DefaultRunBytes
	if v, ok := m.RunBytes[spec.Name]; ok {
		r = v
	}
	if r <= 0 {
		r = 64
	}
	if mode == SlateSched && m.SlateRunFactor > 0 {
		r *= m.SlateRunFactor
	}
	return r
}

// TraceModel derives locality parameters by simulating each kernel's
// synthetic address trace (kern.Spec.Pattern) through the cache simulator:
// a miss-ratio curve sampled at geometric capacities yields HitRate under
// L2 partitioning, and first-touch run statistics yield MeanRunBytes.
//
// Results are memoized per (content fingerprint, mode, taskSize), so any
// number of kernel instances — or renamed copies — with identical geometry
// and work model share one entry. The model is safe for concurrent use:
// distinct entries build in parallel (each build touches only its own trace
// and cache simulator), while concurrent requests for the same key
// single-flight behind the first builder.
type TraceModel struct {
	Dev *device.Device
	// MaxAccesses caps assembled trace length (0 selects a default).
	MaxAccesses int
	// Seed drives trace assembly determinism.
	Seed int64
	// BuildWorkers bounds the goroutines used inside one entry's MRC build
	// (<=1 means sequential). The one-pass reuse-distance engine extracts
	// distances sequentially and shards only its counting phase across
	// capacity-independent trace segments; the legacy oracle path fans the
	// independent capacity-point simulations instead. Either way the result
	// is bit-identical at any setting.
	BuildWorkers int
	// LegacyMRC selects the pre-version-2 path: one full set-associative
	// LRU simulation per capacity point. It is the validation oracle the
	// property tests and `slatebench -exp modelbench` compare the one-pass
	// engine against; production builds leave it false.
	LegacyMRC bool

	mu    sync.Mutex
	cache map[traceKey]*traceEntry
}

type traceKey struct {
	fp       string
	mode     Mode
	taskSize int
}

type traceEntry struct {
	// ready is closed once sizes/missRate/runBytes are final; concurrent
	// requesters of an in-flight key block on it instead of re-building.
	ready    chan struct{}
	sizes    []int
	missRate []float64
	runBytes float64
}

// mrcSizes are the L2 capacities at which miss ratios are sampled.
var mrcSizes = []int{
	64 << 10, 128 << 10, 256 << 10, 512 << 10,
	1 << 20, 3 << 20 / 2, 3 << 20, 6 << 20,
}

// NewTraceModel builds a trace-driven model for the device.
func NewTraceModel(dev *device.Device) *TraceModel {
	return &TraceModel{Dev: dev, MaxAccesses: 1_000_000, Seed: 1, cache: map[traceKey]*traceEntry{}}
}

func (m *TraceModel) entry(spec *kern.Spec, mode Mode, taskSize int) *traceEntry {
	if mode == HardwareSched {
		taskSize = 1 // irrelevant under hardware scheduling
	}
	// Content addressing: renamed instances of one kernel (the multi-tenant
	// harness runs "BS@3", "RG#1", …) hash to the same fingerprint and
	// share the memoized entry by construction.
	key := traceKey{spec.Fingerprint(), mode, taskSize}
	m.mu.Lock()
	if e, ok := m.cache[key]; ok {
		m.mu.Unlock()
		<-e.ready
		return e
	}
	e := &traceEntry{ready: make(chan struct{})}
	m.cache[key] = e
	m.mu.Unlock()
	// Build outside the map lock so distinct keys build concurrently — the
	// trace simulations dominate harness wall-clock.
	m.build(spec, mode, taskSize, e)
	close(e.ready)
	return e
}

func (m *TraceModel) build(spec *kern.Spec, mode Mode, taskSize int, e *traceEntry) {
	p := spec.Pattern
	if p == nil {
		// No pattern: pure streaming with block-sized private chunks.
		bytesPerBlock := int(spec.L2BytesPerBlock)
		if bytesPerBlock < 64 {
			// Effectively no memory traffic; locality irrelevant.
			e.sizes, e.missRate, e.runBytes = mrcSizes, ones(len(mrcSizes)), 64
			return
		}
		blocks := spec.NumBlocks()
		if blocks > 4096 {
			blocks = 4096
		}
		p = traces.Streaming{Blocks: blocks, BytesPerBlock: bytesPerBlock, LineBytes: m.Dev.L2.LineBytes}
	}

	workers := m.Dev.MaxWorkers(spec.Shape(), m.Dev.NumSMs)
	if workers < 1 {
		workers = 1
	}
	if nb := p.NumBlocks(); workers > nb {
		workers = nb
	}
	order := traces.HardwareOrder
	if mode == SlateSched {
		order = traces.SlateOrder
	}
	acfg := traces.AssembleConfig{
		Order:       order,
		Workers:     workers,
		TaskSize:    taskSize,
		Chunk:       8,
		Seed:        m.Seed,
		MaxAccesses: m.maxAccesses(),
	}
	trace := traces.Assemble(p, acfg)
	e.sizes = mrcSizes
	if m.LegacyMRC {
		e.missRate = m.legacyMRC(trace)
	} else {
		// Single pass over the trace answers every capacity at once.
		bw := m.BuildWorkers
		if bw < 1 {
			bw = 1
		}
		e.missRate = cache.ReuseDistanceMRCWorkers(m.Dev.L2, trace, mrcSizes, bw)
	}
	e.runBytes = traces.StreamRunStats(p, acfg).MeanRunBytes
}

// legacyMRC is the version-1 model's miss-ratio curve: one full
// set-associative simulation per capacity point, BuildWorkers fanning the
// independent points. Kept as the validation oracle and the modelbench
// comparison baseline.
func (m *TraceModel) legacyMRC(trace []uint64) []float64 {
	missRate := make([]float64, len(mrcSizes))
	simAt := func(i int) {
		cfg := m.Dev.L2
		cfg.SizeBytes = mrcSizes[i]
		cfg.Sets = 0
		st := cache.SimulateTrace(cfg, trace)
		missRate[i] = st.MissRate()
	}
	if bw := m.BuildWorkers; bw > 1 {
		// Each capacity point simulates the shared read-only trace through
		// its own cache instance and writes a disjoint slot.
		if bw > len(mrcSizes) {
			bw = len(mrcSizes)
		}
		var wg sync.WaitGroup
		for w := 0; w < bw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(mrcSizes); i += bw {
					simAt(i)
				}
			}(w)
		}
		wg.Wait()
	} else {
		for i := range mrcSizes {
			simAt(i)
		}
	}
	return missRate
}

// MissRatioCurve returns a copy of the memoized capacity points and miss
// ratios for spec — the curve HitRate interpolates. Exposed so validation
// drivers (slatebench -exp modelbench) can compare the one-pass engine
// against the legacy oracle point by point.
func (m *TraceModel) MissRatioCurve(spec *kern.Spec, mode Mode, taskSize int) (sizes []int, missRate []float64) {
	e := m.entry(spec, mode, taskSize)
	sizes = make([]int, len(e.sizes))
	copy(sizes, e.sizes)
	missRate = make([]float64, len(e.missRate))
	copy(missRate, e.missRate)
	return sizes, missRate
}

func (m *TraceModel) maxAccesses() int {
	if m.MaxAccesses > 0 {
		return m.MaxAccesses
	}
	return 1_000_000
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// HitRate implements PerfModel by interpolating the kernel's miss-ratio
// curve at the granted L2 capacity.
func (m *TraceModel) HitRate(spec *kern.Spec, mode Mode, taskSize int, l2Bytes float64) float64 {
	e := m.entry(spec, mode, taskSize)
	miss := interpolate(e.sizes, e.missRate, l2Bytes)
	return 1 - miss
}

// MeanRunBytes implements PerfModel.
func (m *TraceModel) MeanRunBytes(spec *kern.Spec, mode Mode, taskSize int) float64 {
	return m.entry(spec, mode, taskSize).runBytes
}

// interpolate performs piecewise-linear interpolation of ys over xs
// (ascending), clamping outside the range.
func interpolate(xs []int, ys []float64, x float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if x <= float64(xs[0]) {
		return ys[0]
	}
	if x >= float64(xs[len(xs)-1]) {
		return ys[len(ys)-1]
	}
	for i := 1; i < len(xs); i++ {
		if x <= float64(xs[i]) {
			x0, x1 := float64(xs[i-1]), float64(xs[i])
			t := (x - x0) / (x1 - x0)
			return ys[i-1] + t*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}
