package engine

import (
	"testing"

	"slate/internal/device"
	"slate/internal/kern"
	"slate/internal/traces"
)

func traceSpec(name string) *kern.Spec {
	return &kern.Spec{
		Name: name, Grid: kern.D1(2048), BlockDim: kern.D1(64),
		FLOPsPerBlock: 1e4, InstrPerBlock: 1e4, L2BytesPerBlock: 50 << 10,
		ComputeEff: 0.1,
		Pattern: traces.RowSweep{
			Blocks: 2048, PivotBytes: 4096, SliceBytes: 32 << 10,
			SliceOverlap: 8 << 10, LineBytes: 64, RowBase: 1 << 22,
		},
	}
}

func TestTraceModelOrderSensitivity(t *testing.T) {
	m := NewTraceModel(device.TitanXp())
	spec := traceSpec("tm")
	hw := m.HitRate(spec, HardwareSched, 1, 3<<20)
	sl := m.HitRate(spec, SlateSched, 10, 3<<20)
	if sl <= hw {
		t.Fatalf("slate hit %.3f not above hardware %.3f for an overlap pattern", sl, hw)
	}
	rhw := m.MeanRunBytes(spec, HardwareSched, 1)
	rsl := m.MeanRunBytes(spec, SlateSched, 10)
	if rsl <= rhw {
		t.Fatalf("slate runs %.0fB not above hardware %.0fB", rsl, rhw)
	}
}

func TestTraceModelMemoizes(t *testing.T) {
	m := NewTraceModel(device.TitanXp())
	spec := traceSpec("memo")
	a := m.HitRate(spec, SlateSched, 10, 1<<20)
	b := m.HitRate(spec, SlateSched, 10, 1<<20)
	if a != b {
		t.Fatal("memoized hit rate differs")
	}
	// Instance suffixes share the entry.
	inst := traceSpec("memo@7")
	if got := m.HitRate(inst, SlateSched, 10, 1<<20); got != a {
		t.Fatalf("instance-suffixed kernel got %.3f, base %.3f; '@' sharing broken", got, a)
	}
	// Hardware mode ignores task size.
	h1 := m.HitRate(spec, HardwareSched, 1, 1<<20)
	h2 := m.HitRate(spec, HardwareSched, 50, 1<<20)
	if h1 != h2 {
		t.Fatal("hardware-mode hit rate depends on task size")
	}
}

func TestTraceModelHitRateGrowsWithCache(t *testing.T) {
	m := NewTraceModel(device.TitanXp())
	spec := traceSpec("mrc")
	prev := -1.0
	for _, sz := range []float64{64 << 10, 512 << 10, 3 << 20, 6 << 20} {
		h := m.HitRate(spec, SlateSched, 10, sz)
		if h < prev-1e-9 {
			t.Fatalf("hit rate decreased with larger cache at %v", sz)
		}
		if h < 0 || h > 1 {
			t.Fatalf("hit rate %v out of range", h)
		}
		prev = h
	}
}

func TestTraceModelPatternlessKernels(t *testing.T) {
	m := NewTraceModel(device.TitanXp())
	// Memory-carrying kernel without a pattern falls back to streaming.
	noPat := &kern.Spec{
		Name: "nopat", Grid: kern.D1(6000), BlockDim: kern.D1(64),
		FLOPsPerBlock: 1, InstrPerBlock: 1, L2BytesPerBlock: 1 << 20, ComputeEff: 0.5,
	}
	if r := m.MeanRunBytes(noPat, SlateSched, 10); r < 4096 {
		t.Fatalf("streaming fallback run bytes = %v", r)
	}
	// A compute-only kernel (no memory traffic) reports miss-everything.
	pure := &kern.Spec{
		Name: "pure", Grid: kern.D1(64), BlockDim: kern.D1(64),
		FLOPsPerBlock: 1e6, InstrPerBlock: 1e6, ComputeEff: 0.5,
	}
	if h := m.HitRate(pure, SlateSched, 10, 3<<20); h != 0 {
		t.Fatalf("pure-compute hit rate = %v, want 0", h)
	}
}

func TestInterpolate(t *testing.T) {
	xs := []int{10, 20, 40}
	ys := []float64{1.0, 0.5, 0.25}
	cases := []struct{ x, want float64 }{
		{5, 1.0},   // clamp low
		{10, 1.0},  // exact
		{15, 0.75}, // midpoint
		{40, 0.25}, // exact end
		{80, 0.25}, // clamp high
	}
	for _, c := range cases {
		if got := interpolate(xs, ys, c.x); got != c.want {
			t.Errorf("interpolate(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if interpolate(nil, nil, 5) != 0 {
		t.Error("empty interpolation should be 0")
	}
}

func TestModeStringAndAccessors(t *testing.T) {
	if HardwareSched.String() != "hardware" || SlateSched.String() != "slate" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode string empty")
	}
	e, clk := newEngine()
	h, err := e.Launch(computeKernel("acc", 240), LaunchOpts{Mode: SlateSched, SMLow: 3, SMHigh: 17})
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := h.SMRange(); lo != 3 || hi != 17 {
		t.Fatalf("SMRange = [%d,%d]", lo, hi)
	}
	if e.Running() != 1 {
		t.Fatalf("Running = %d", e.Running())
	}
	clk.Run(0)
	if e.Running() != 0 {
		t.Fatal("Running not drained")
	}
}

func TestMetricsZeroDuration(t *testing.T) {
	var m Metrics
	if m.GFLOPS() != 0 || m.AccessBW() != 0 || m.DRAMBW() != 0 || m.IPC(1e9) != 0 {
		t.Fatal("zero-duration metrics should report 0 rates")
	}
}

func TestNewEnginePanicsOnInvalidDevice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid device accepted")
		}
	}()
	bad := device.TitanXp()
	bad.NumSMs = 0
	New(bad, nil, staticModel())
}
