package engine

import (
	"slate/internal/vtime"
)

// Watchdog polls watched kernel instances on the virtual clock and reports
// the two runaway signatures software scheduling can catch (and hardware
// leftover policy cannot): a kernel whose Progress has stopped moving for
// several consecutive checks ("stall"), and a kernel that has overrun a
// caller-supplied deadline derived from its profile-predicted duration
// ("overrun"). The watchdog only detects — it never evicts. OnViolation
// fires at most once per watch; the caller decides whether to Evict,
// requeue, or ignore.
type Watchdog struct {
	Eng *Engine
	// Interval is the check period (default 500µs of virtual time).
	Interval vtime.Duration
	// StallChecks is how many consecutive zero-progress checks constitute a
	// stall (default 4). Short pauses — a resize retreat/relaunch — span at
	// most one check at the default interval and never trip it.
	StallChecks int
	// OnViolation receives each violation: the offending handle and the
	// reason, "stall" or "overrun".
	OnViolation func(now vtime.Time, h *Handle, reason string)

	watches map[*Handle]*watch
}

type watch struct {
	deadline     vtime.Time // absolute overrun deadline (Forever = none)
	lastProgress float64
	stalls       int
	ev           *vtime.Event
}

// NewWatchdog builds a watchdog over the engine with default thresholds.
func NewWatchdog(eng *Engine) *Watchdog {
	return &Watchdog{
		Eng:         eng,
		Interval:    500 * vtime.Microsecond,
		StallChecks: 4,
		watches:     map[*Handle]*watch{},
	}
}

// Watch starts monitoring a running instance. budget is the instance's
// allowed runtime from now (typically an overrun multiple of its
// profile-predicted duration); budget <= 0 disables the overrun check and
// watches for stalls only.
func (w *Watchdog) Watch(h *Handle, budget vtime.Duration) {
	if h.Done() {
		return
	}
	w.Unwatch(h)
	now := w.Eng.Clock.Now()
	deadline := vtime.Forever
	if budget > 0 {
		deadline = now.Add(budget)
	}
	wt := &watch{deadline: deadline, lastProgress: h.Progress()}
	w.watches[h] = wt
	wt.ev = w.Eng.Clock.After(w.interval(), func(t vtime.Time) { w.check(t, h) })
}

// Unwatch stops monitoring an instance (idempotent).
func (w *Watchdog) Unwatch(h *Handle) {
	if wt, ok := w.watches[h]; ok {
		if wt.ev != nil {
			w.Eng.Clock.Cancel(wt.ev)
		}
		delete(w.watches, h)
	}
}

// Watched returns the number of instances under watch (for tests).
func (w *Watchdog) Watched() int { return len(w.watches) }

func (w *Watchdog) interval() vtime.Duration {
	if w.Interval > 0 {
		return w.Interval
	}
	return 500 * vtime.Microsecond
}

func (w *Watchdog) stallChecks() int {
	if w.StallChecks > 0 {
		return w.StallChecks
	}
	return 4
}

// check is one poll of one instance. It runs inside a clock callback, so it
// may call Sync and (through OnViolation) Evict safely.
func (w *Watchdog) check(now vtime.Time, h *Handle) {
	wt, ok := w.watches[h]
	if !ok {
		return
	}
	if h.Done() {
		delete(w.watches, h)
		return
	}
	w.Eng.Sync()
	violation := ""
	switch {
	case now >= wt.deadline:
		violation = "overrun"
	case h.Progress() <= wt.lastProgress:
		wt.stalls++
		if wt.stalls >= w.stallChecks() {
			violation = "stall"
		}
	default:
		wt.stalls = 0
	}
	wt.lastProgress = h.Progress()
	if violation != "" {
		delete(w.watches, h)
		if w.OnViolation != nil {
			w.OnViolation(now, h, violation)
		}
		return
	}
	wt.ev = w.Eng.Clock.After(w.interval(), func(t vtime.Time) { w.check(t, h) })
}
