package engine

import (
	"sync"
	"testing"

	"slate/internal/device"
)

// TestTraceModelConcurrentSharedUse hammers one model from many goroutines
// over a mix of duplicate and distinct keys; run with -race this verifies
// the single-flight entry construction, and the collected values must all
// match a serially computed reference.
func TestTraceModelConcurrentSharedUse(t *testing.T) {
	ref := NewTraceModel(device.TitanXp())
	spec := traceSpec("conc")
	type q struct {
		mode Mode
		ts   int
		l2   float64
	}
	queries := []q{
		{HardwareSched, 1, 1 << 20},
		{SlateSched, 1, 1 << 20},
		{SlateSched, 10, 1 << 20},
		{SlateSched, 10, 3 << 20},
		{SlateSched, 50, 512 << 10},
	}
	want := make([]float64, len(queries))
	for i, c := range queries {
		want[i] = ref.HitRate(spec, c.mode, c.ts, c.l2)
	}

	m := NewTraceModel(device.TitanXp())
	const goroutines = 8
	got := make([][]float64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]float64, len(queries))
			for i, c := range queries {
				// Renamed instance specs must share entries by content.
				s := traceSpec("conc@inst")
				got[g][i] = m.HitRate(s, c.mode, c.ts, c.l2)
			}
		}(g)
	}
	wg.Wait()
	for g := range got {
		for i := range queries {
			if got[g][i] != want[i] {
				t.Fatalf("goroutine %d query %d: got %v, want %v", g, i, got[g][i], want[i])
			}
		}
	}
}

// TestTraceModelBuildWorkersBitIdentical verifies the MRC fan-out produces
// exactly the sequential result.
func TestTraceModelBuildWorkersBitIdentical(t *testing.T) {
	seq := NewTraceModel(device.TitanXp())
	par := NewTraceModel(device.TitanXp())
	par.BuildWorkers = 4
	spec := traceSpec("bw")
	for _, l2 := range []float64{64 << 10, 700 << 10, 3 << 20, 6 << 20} {
		a := seq.HitRate(spec, SlateSched, 10, l2)
		b := par.HitRate(spec, SlateSched, 10, l2)
		if a != b {
			t.Fatalf("l2=%v: sequential %v != fanned-out %v", l2, a, b)
		}
	}
	if a, b := seq.MeanRunBytes(spec, SlateSched, 10), par.MeanRunBytes(spec, SlateSched, 10); a != b {
		t.Fatalf("run bytes differ: %v vs %v", a, b)
	}
}
