package engine

import (
	"testing"

	"slate/internal/vtime"
)

func TestEvictReturnsPartialMetricsAndFreesSMs(t *testing.T) {
	e, clk := newEngine()
	victim, err := e.Launch(computeKernel("victim", 4800), LaunchOpts{
		Mode: SlateSched, SMLow: 0, SMHigh: 14, TaskSize: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	partner, err := e.Launch(computeKernel("partner", 4800), LaunchOpts{
		Mode: SlateSched, SMLow: 15, SMHigh: 29, TaskSize: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Let both make some progress, then evict the first.
	evictAt := vtime.Time(5 * vtime.Millisecond)
	var partial Metrics
	clk.At(evictAt, func(now vtime.Time) {
		m, err := e.Evict(victim)
		if err != nil {
			t.Errorf("evict: %v", err)
		}
		partial = m
	})
	run(t, clk)

	if !victim.Evicted() || !victim.Done() {
		t.Fatal("victim not marked evicted/done")
	}
	if partner.Evicted() {
		t.Fatal("partner wrongly evicted")
	}
	if partial.Completed != evictAt {
		t.Fatalf("partial metrics completed at %v, want %v", partial.Completed, evictAt)
	}
	done := victim.Progress()
	if done <= 0 || done >= 4800 {
		t.Fatalf("evicted progress = %v, want partial (0, 4800)", done)
	}
	if done != float64(int64(done)) {
		t.Fatalf("eviction left fractional progress %v; want a block boundary", done)
	}
	if e.Running() != 0 {
		t.Fatalf("running = %d after completion, want 0", e.Running())
	}
	if !partner.Done() {
		t.Fatal("partner did not complete after the eviction")
	}
	// Double eviction is rejected.
	if _, err := e.Evict(victim); err == nil {
		t.Fatal("evicting a finished kernel succeeded")
	}
}

func TestStallFreezesProgress(t *testing.T) {
	e, clk := newEngine()
	h, err := e.Launch(computeKernel("stuck", 4800), LaunchOpts{
		Mode: SlateSched, SMLow: 0, SMHigh: 29, TaskSize: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	var before, after float64
	clk.At(vtime.Time(2*vtime.Millisecond), func(vtime.Time) {
		e.Sync()
		before = h.Progress()
		if err := e.Stall(h, 10*vtime.Millisecond); err != nil {
			t.Errorf("stall: %v", err)
		}
	})
	clk.At(vtime.Time(11*vtime.Millisecond), func(vtime.Time) {
		e.Sync()
		after = h.Progress()
	})
	run(t, clk)
	if before <= 0 {
		t.Fatal("kernel made no progress before the stall")
	}
	if after != before {
		t.Fatalf("progress moved during stall: %v -> %v", before, after)
	}
	if !h.Done() {
		t.Fatal("kernel never resumed after the stall elapsed")
	}
}

func TestWatchdogDetectsStall(t *testing.T) {
	e, clk := newEngine()
	h, err := e.Launch(computeKernel("stuck", 48000), LaunchOpts{
		Mode: SlateSched, SMLow: 0, SMHigh: 29, TaskSize: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWatchdog(e)
	var gotReason string
	var gotAt vtime.Time
	w.OnViolation = func(now vtime.Time, vh *Handle, reason string) {
		if vh != h {
			t.Errorf("violation for wrong handle")
		}
		gotReason, gotAt = reason, now
		if _, err := e.Evict(vh); err != nil {
			t.Errorf("evict on violation: %v", err)
		}
	}
	w.Watch(h, 0) // stall-only watch
	stallAt := vtime.Time(2 * vtime.Millisecond)
	clk.At(stallAt, func(vtime.Time) { _ = e.Stall(h, vtime.Duration(10*vtime.Second)) })
	run(t, clk)
	if gotReason != "stall" {
		t.Fatalf("violation = %q, want stall", gotReason)
	}
	// Detection latency is bounded by StallChecks+1 intervals.
	bound := vtime.Duration(w.stallChecks()+1) * w.interval()
	if lat := gotAt.Sub(stallAt); lat > bound {
		t.Fatalf("stall detected after %v, want <= %v", lat, bound)
	}
	if w.Watched() != 0 {
		t.Fatal("watch not released after violation")
	}
}

func TestWatchdogDetectsOverrun(t *testing.T) {
	e, clk := newEngine()
	h, err := e.Launch(computeKernel("hog", 48000), LaunchOpts{
		Mode: SlateSched, SMLow: 0, SMHigh: 29, TaskSize: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWatchdog(e)
	var gotReason string
	w.OnViolation = func(now vtime.Time, vh *Handle, reason string) {
		gotReason = reason
		_, _ = e.Evict(vh)
	}
	// The kernel needs hundreds of ms; the budget says 5ms.
	w.Watch(h, 5*vtime.Millisecond)
	run(t, clk)
	if gotReason != "overrun" {
		t.Fatalf("violation = %q, want overrun", gotReason)
	}
	if !h.Evicted() {
		t.Fatal("hog not evicted")
	}
}

func TestWatchdogIgnoresHealthyKernel(t *testing.T) {
	e, clk := newEngine()
	h, err := e.Launch(computeKernel("ok", 2400), LaunchOpts{
		Mode: SlateSched, SMLow: 0, SMHigh: 29, TaskSize: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWatchdog(e)
	fired := false
	w.OnViolation = func(vtime.Time, *Handle, string) { fired = true }
	w.Watch(h, vtime.Duration(10*vtime.Second))
	run(t, clk)
	if fired {
		t.Fatal("watchdog fired on a healthy kernel")
	}
	if !h.Done() || h.Evicted() {
		t.Fatal("healthy kernel did not complete normally")
	}
	if w.Watched() != 0 {
		t.Fatal("watch not released after completion")
	}
}
