// Package cudart is the vanilla CUDA runtime baseline (§V-A2): every
// process owns its own context, and with multiple active contexts the
// device time-slices at kernel granularity — one kernel owns the whole GPU,
// then the next context's kernel runs, paying a context-switch cost at each
// hand-off. There is no spatial sharing of any kind.
package cudart

import (
	"slate/internal/device"
	"slate/internal/engine"
	"slate/internal/kern"
	"slate/internal/run"
	"slate/internal/vtime"
)

// Backend implements run.Backend for vanilla CUDA.
type Backend struct {
	Dev   *device.Device
	Clock *vtime.Clock
	Eng   *engine.Engine

	gpu     run.FIFO
	lastCtx *kern.Spec
	// Switches counts context switches, an observable for tests.
	Switches int
}

// New builds a CUDA backend with its own engine on the shared clock.
func New(dev *device.Device, clock *vtime.Clock, model engine.PerfModel) *Backend {
	return &Backend{Dev: dev, Clock: clock, Eng: engine.New(dev, clock, model)}
}

// Name implements run.Backend.
func (b *Backend) Name() string { return "cuda" }

// LaunchOverheads implements run.Backend: just the kernel-launch API cost.
func (b *Backend) LaunchOverheads(*kern.Spec, int) run.Overheads {
	return run.Overheads{HostSec: b.Dev.KernelLaunchSeconds}
}

// TransferSeconds implements run.Backend.
func (b *Backend) TransferSeconds(n int64) float64 { return b.Dev.PCIe.TransferSeconds(n) }

// Submit implements run.Backend: the kernel waits for exclusive device
// ownership, pays a context switch if the previous kernel belonged to a
// different context, runs under the hardware scheduler, and releases the
// device on completion.
func (b *Backend) Submit(spec *kern.Spec, done func(vtime.Time, engine.Metrics)) error {
	b.gpu.Acquire(b.Clock, func(now vtime.Time) {
		start := func(vtime.Time) {
			h, err := b.Eng.Launch(spec, engine.LaunchOpts{Mode: engine.HardwareSched})
			if err != nil {
				// Release so other contexts are not wedged, then surface the
				// failure through the completion callback with zero metrics.
				b.gpu.Release(b.Clock)
				done(b.Clock.Now(), engine.Metrics{})
				return
			}
			b.Eng.OnComplete(h, func(at vtime.Time) {
				b.gpu.Release(b.Clock)
				done(at, h.Metrics())
			})
		}
		if b.lastCtx != nil && b.lastCtx != spec {
			b.Switches++
			b.lastCtx = spec
			b.Clock.After(vtime.FromSeconds(b.Dev.ContextSwitchSeconds), start)
			return
		}
		b.lastCtx = spec
		start(b.Clock.Now())
	})
	return nil
}
