package cudart

import (
	"testing"

	"slate/internal/device"
	"slate/internal/engine"
	"slate/internal/kern"
	"slate/internal/vtime"
)

func spec(name string, blocks int) *kern.Spec {
	return &kern.Spec{
		Name: name, Grid: kern.D1(blocks), BlockDim: kern.D1(256),
		FLOPsPerBlock: 1e7, InstrPerBlock: 1e5, L2BytesPerBlock: 1e4,
		ComputeEff: 0.8,
	}
}

func newBackend() (*Backend, *vtime.Clock) {
	clk := vtime.NewClock()
	dev := device.TitanXp()
	return New(dev, clk, &engine.StaticModel{DefaultHit: 0, DefaultRunBytes: 1 << 20, SlateRunFactor: 1}), clk
}

func TestExclusiveSerialization(t *testing.T) {
	b, clk := newBackend()
	a, bb := spec("a", 2400), spec("b", 2400)
	var ends []vtime.Time
	var overlap bool
	running := 0
	submit := func(s *kern.Spec) {
		if err := b.Submit(s, func(at vtime.Time, _ engine.Metrics) {
			running--
			ends = append(ends, at)
		}); err != nil {
			t.Fatal(err)
		}
		running++
		if running > 2 {
			overlap = true
		}
	}
	submit(a)
	submit(bb)
	clk.Run(0)
	if len(ends) != 2 {
		t.Fatalf("completions = %d, want 2", len(ends))
	}
	if overlap {
		t.Fatal("more than the submitted pair tracked")
	}
	// Strict serialization: second completion ≈ 2× first (+switch).
	if ends[1] < ends[0]*2-vtime.Time(1e6) {
		t.Fatalf("kernels overlapped under vanilla CUDA: %v then %v", ends[0], ends[1])
	}
}

func TestContextSwitchCounting(t *testing.T) {
	b, clk := newBackend()
	a, c := spec("a", 240), spec("c", 240)
	done := 0
	cb := func(vtime.Time, engine.Metrics) { done++ }
	// a, a, c, a: two alternation boundaries plus c→a.
	for _, s := range []*kern.Spec{a, a, c, a} {
		if err := b.Submit(s, cb); err != nil {
			t.Fatal(err)
		}
	}
	clk.Run(0)
	if done != 4 {
		t.Fatalf("completions = %d, want 4", done)
	}
	if b.Switches != 2 {
		t.Fatalf("context switches = %d, want 2 (a→c, c→a)", b.Switches)
	}
}

func TestContextSwitchCostsTime(t *testing.T) {
	// Same total work with and without alternation; alternation must take
	// longer by ~switches × ContextSwitchSeconds.
	runSeq := func(seq []*kern.Spec) float64 {
		b, clk := newBackend()
		for _, s := range seq {
			if err := b.Submit(s, func(vtime.Time, engine.Metrics) {}); err != nil {
				t.Fatal(err)
			}
		}
		clk.Run(0)
		return vtime.Duration(clk.Now()).Seconds()
	}
	a, c := spec("a", 240), spec("c", 240)
	same := runSeq([]*kern.Spec{a, a, a, a})
	alt := runSeq([]*kern.Spec{a, c, a, c})
	dev := device.TitanXp()
	wantExtra := 3 * dev.ContextSwitchSeconds
	if diff := alt - same; diff < wantExtra*0.9 || diff > wantExtra*1.5 {
		t.Fatalf("alternation cost %.1fµs extra, want ≈%.1fµs", diff*1e6, wantExtra*1e6)
	}
}

func TestLaunchOverheadsAndTransfers(t *testing.T) {
	b, _ := newBackend()
	ov := b.LaunchOverheads(spec("x", 1), 0)
	if ov.HostSec != b.Dev.KernelLaunchSeconds || ov.CommSec != 0 || ov.InjectSec != 0 {
		t.Fatalf("overheads = %+v", ov)
	}
	if b.Name() != "cuda" {
		t.Fatalf("name = %s", b.Name())
	}
	if sec := b.TransferSeconds(1 << 30); sec <= 0 {
		t.Fatal("transfer time not positive")
	}
}

func TestInvalidKernelReleasesDevice(t *testing.T) {
	b, clk := newBackend()
	bad := spec("bad", 240)
	bad.SharedMemBytes = 1 << 20 // cannot fit on an SM
	got := 0
	if err := b.Submit(bad, func(vtime.Time, engine.Metrics) { got++ }); err != nil {
		t.Fatal(err)
	}
	// A good kernel afterwards must still run: the device token was
	// released despite the failed launch.
	if err := b.Submit(spec("ok", 240), func(vtime.Time, engine.Metrics) { got++ }); err != nil {
		t.Fatal(err)
	}
	clk.Run(0)
	if got != 2 {
		t.Fatalf("completions = %d, want 2 (failure surfaces via callback)", got)
	}
}
