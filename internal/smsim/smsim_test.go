package smsim

import (
	"testing"
	"testing/quick"
)

func gp102() SM {
	return SM{
		MaxThreads:          2048,
		MaxBlocks:           32,
		Registers:           65536,
		SharedMemBytes:      98304,
		FP32Lanes:           128,
		ClockHz:             1.582e9,
		WarpsForComputePeak: 16,
		WarpsForMemPeak:     48,
	}
}

func TestValidate(t *testing.T) {
	if err := gp102().Validate(); err != nil {
		t.Fatalf("valid SM rejected: %v", err)
	}
	bad := gp102()
	bad.FP32Lanes = 0
	if bad.Validate() == nil {
		t.Fatal("invalid SM accepted")
	}
}

func TestPeakFLOPS(t *testing.T) {
	// 128 lanes * 2 (FMA) * 1.582 GHz ≈ 405 GFLOP/s per SM;
	// 30 SMs ≈ 12.15 TFLOP/s, the Titan Xp's advertised figure.
	got := gp102().PeakFLOPS()
	want := 128 * 2 * 1.582e9
	if got != want {
		t.Fatalf("PeakFLOPS = %v, want %v", got, want)
	}
}

func TestResidentBlocksThreadLimited(t *testing.T) {
	// 256-thread blocks, no regs/smem pressure: 2048/256 = 8 blocks.
	got := ResidentBlocks(gp102(), BlockShape{Threads: 256})
	if got != 8 {
		t.Fatalf("ResidentBlocks = %d, want 8", got)
	}
}

func TestResidentBlocksBlockSlotLimited(t *testing.T) {
	// 32-thread blocks: threads allow 64 but slots cap at 32.
	got := ResidentBlocks(gp102(), BlockShape{Threads: 32})
	if got != 32 {
		t.Fatalf("ResidentBlocks = %d, want 32", got)
	}
}

func TestResidentBlocksRegisterLimited(t *testing.T) {
	// 256 threads * 64 regs = 16384 regs/block → 65536/16384 = 4 blocks.
	got := ResidentBlocks(gp102(), BlockShape{Threads: 256, RegsPerThread: 64})
	if got != 4 {
		t.Fatalf("ResidentBlocks = %d, want 4", got)
	}
}

func TestResidentBlocksSharedMemLimited(t *testing.T) {
	// 48 KiB smem per block → 98304/49152 = 2 blocks.
	got := ResidentBlocks(gp102(), BlockShape{Threads: 128, SharedMemBytes: 48 << 10})
	if got != 2 {
		t.Fatalf("ResidentBlocks = %d, want 2", got)
	}
}

func TestResidentBlocksInvalidShape(t *testing.T) {
	cases := []BlockShape{
		{Threads: 0},
		{Threads: 2000},                         // > 1024 CUDA limit
		{Threads: 1024, RegsPerThread: 256},     // 262144 regs > 65536
		{Threads: 128, SharedMemBytes: 1 << 20}, // > SM smem
	}
	for i, bs := range cases {
		if got := ResidentBlocks(gp102(), bs); got != 0 {
			t.Errorf("case %d: invalid shape got %d blocks, want 0", i, got)
		}
	}
}

func TestOccupancy(t *testing.T) {
	// 8 blocks * 256 threads = 2048 → 100%.
	if got := Occupancy(gp102(), BlockShape{Threads: 256}); got != 1.0 {
		t.Fatalf("occupancy = %v, want 1.0", got)
	}
	// Register-limited: 4 blocks * 256 = 1024 → 50%.
	if got := Occupancy(gp102(), BlockShape{Threads: 256, RegsPerThread: 64}); got != 0.5 {
		t.Fatalf("occupancy = %v, want 0.5", got)
	}
}

func TestWarps(t *testing.T) {
	if w := (BlockShape{Threads: 128}).Warps(); w != 4 {
		t.Fatalf("Warps(128) = %d, want 4", w)
	}
	if w := (BlockShape{Threads: 100}).Warps(); w != 4 {
		t.Fatalf("Warps(100) = %d, want 4 (round up)", w)
	}
	if w := (BlockShape{Threads: 1}).Warps(); w != 1 {
		t.Fatalf("Warps(1) = %d, want 1", w)
	}
}

func TestUtilRamp(t *testing.T) {
	sm := gp102()
	if u := sm.ComputeUtil(0); u != 0 {
		t.Fatalf("ComputeUtil(0) = %v", u)
	}
	if u := sm.ComputeUtil(8); u != 0.5 {
		t.Fatalf("ComputeUtil(8) = %v, want 0.5", u)
	}
	if u := sm.ComputeUtil(16); u != 1 {
		t.Fatalf("ComputeUtil(16) = %v, want 1", u)
	}
	if u := sm.ComputeUtil(64); u != 1 {
		t.Fatalf("ComputeUtil(64) = %v, want clamped 1", u)
	}
	// Memory needs more warps: at 16 warps memory util is only 1/3.
	if u := sm.MemUtil(16); u <= sm.ComputeUtil(16)-1e-9 && u != 1.0/3 {
		t.Fatalf("MemUtil(16) = %v, want 1/3", u)
	}
	if u := sm.MemUtil(48); u != 1 {
		t.Fatalf("MemUtil(48) = %v, want 1", u)
	}
}

// Property: resident block count respects every constraint simultaneously.
func TestPropertyResidentBlocksFeasible(t *testing.T) {
	sm := gp102()
	f := func(threads, regs, smem uint16) bool {
		bs := BlockShape{
			Threads:        int(threads%1024) + 1,
			RegsPerThread:  int(regs % 128),
			SharedMemBytes: int(smem) % (96 << 10),
		}
		n := ResidentBlocks(sm, bs)
		if n < 0 || n > sm.MaxBlocks {
			return false
		}
		if n == 0 {
			return true // infeasible shapes are allowed to report 0
		}
		if n*bs.Threads > sm.MaxThreads {
			return false
		}
		if n*bs.Threads*bs.RegsPerThread > sm.Registers {
			return false
		}
		if n*bs.SharedMemBytes > sm.SharedMemBytes {
			return false
		}
		// Maximality: one more block must violate something.
		m := n + 1
		if m*bs.Threads <= sm.MaxThreads &&
			m <= sm.MaxBlocks &&
			m*bs.Threads*bs.RegsPerThread <= sm.Registers &&
			m*bs.SharedMemBytes <= sm.SharedMemBytes {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization functions are monotone nondecreasing and in [0,1].
func TestPropertyUtilMonotone(t *testing.T) {
	sm := gp102()
	prev := -1.0
	for w := 0.0; w <= 64; w += 0.5 {
		u := sm.MemUtil(w)
		if u < prev || u < 0 || u > 1 {
			t.Fatalf("MemUtil not monotone in [0,1] at %v warps", w)
		}
		prev = u
	}
}
