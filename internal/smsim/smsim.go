// Package smsim models streaming-multiprocessor occupancy and utilization.
// It answers the questions Slate's runtime asks: how many thread blocks fit
// on an SM (the persistent-worker count is exactly that number times the
// designated SM range, §III-C), and how much of the SM's issue/memory
// throughput a given number of resident warps can realize.
package smsim

import "fmt"

// SM describes one streaming multiprocessor's capacity.
type SM struct {
	MaxThreads     int     // resident thread limit (2048 on GP102)
	MaxBlocks      int     // resident block limit (32 on GP102)
	Registers      int     // 32-bit registers (65536 on GP102)
	SharedMemBytes int     // shared memory capacity (98304 on GP102)
	FP32Lanes      int     // CUDA cores (128 on GP102)
	ClockHz        float64 // boost clock (1.582e9 on Titan Xp)
	// WarpsForComputePeak is the resident-warp count needed to saturate the
	// issue pipelines; fewer warps leave issue slots empty.
	WarpsForComputePeak int
	// WarpsForMemPeak is the resident-warp count needed to fully hide DRAM
	// latency; memory-bound kernels need more concurrency than compute.
	WarpsForMemPeak int
}

// Validate reports configuration errors.
func (s SM) Validate() error {
	switch {
	case s.MaxThreads <= 0 || s.MaxBlocks <= 0 || s.Registers <= 0 || s.SharedMemBytes < 0:
		return fmt.Errorf("smsim: nonpositive capacity in %+v", s)
	case s.FP32Lanes <= 0 || s.ClockHz <= 0:
		return fmt.Errorf("smsim: nonpositive throughput in %+v", s)
	case s.WarpsForComputePeak <= 0 || s.WarpsForMemPeak <= 0:
		return fmt.Errorf("smsim: nonpositive warp thresholds in %+v", s)
	}
	return nil
}

// PeakFLOPS returns the SM's peak single-precision FLOP rate (FMA counts as
// two operations).
func (s SM) PeakFLOPS() float64 { return float64(s.FP32Lanes) * 2 * s.ClockHz }

// BlockShape describes a kernel's per-block resource footprint.
type BlockShape struct {
	Threads        int
	RegsPerThread  int
	SharedMemBytes int
}

// Warps returns the number of 32-thread warps per block, rounding up.
func (b BlockShape) Warps() int { return (b.Threads + 31) / 32 }

// Validate reports shape errors against an SM's hard limits.
func (b BlockShape) Validate(sm SM) error {
	switch {
	case b.Threads <= 0:
		return fmt.Errorf("smsim: block has %d threads", b.Threads)
	case b.Threads > 1024:
		return fmt.Errorf("smsim: block of %d threads exceeds the 1024-thread limit", b.Threads)
	case b.Threads > sm.MaxThreads:
		return fmt.Errorf("smsim: block of %d threads exceeds SM capacity %d", b.Threads, sm.MaxThreads)
	case b.RegsPerThread < 0 || b.RegsPerThread*b.Threads > sm.Registers:
		return fmt.Errorf("smsim: block needs %d registers, SM has %d", b.RegsPerThread*b.Threads, sm.Registers)
	case b.SharedMemBytes < 0 || b.SharedMemBytes > sm.SharedMemBytes:
		return fmt.Errorf("smsim: block needs %dB shared memory, SM has %d", b.SharedMemBytes, sm.SharedMemBytes)
	}
	return nil
}

// ResidentBlocks returns how many blocks of the given shape fit concurrently
// on one SM — the minimum over the thread, block-slot, register, and
// shared-memory constraints. It returns zero if the shape cannot run at all.
func ResidentBlocks(sm SM, b BlockShape) int {
	if err := b.Validate(sm); err != nil {
		return 0
	}
	n := sm.MaxBlocks
	if byThreads := sm.MaxThreads / b.Threads; byThreads < n {
		n = byThreads
	}
	if b.RegsPerThread > 0 {
		if byRegs := sm.Registers / (b.RegsPerThread * b.Threads); byRegs < n {
			n = byRegs
		}
	}
	if b.SharedMemBytes > 0 {
		if bySmem := sm.SharedMemBytes / b.SharedMemBytes; bySmem < n {
			n = bySmem
		}
	}
	return n
}

// Occupancy returns ResidentBlocks expressed as a fraction of the SM's
// thread capacity, the figure nvprof calls "achieved occupancy" ceiling.
func Occupancy(sm SM, b BlockShape) float64 {
	r := ResidentBlocks(sm, b)
	return float64(r*b.Threads) / float64(sm.MaxThreads)
}

// ComputeUtil returns the fraction of issue throughput realized with the
// given resident warps per SM: linear up to WarpsForComputePeak, then 1.
func (s SM) ComputeUtil(warpsPerSM float64) float64 {
	return rampUtil(warpsPerSM, float64(s.WarpsForComputePeak))
}

// MemUtil returns the fraction of the SM's memory-request throughput
// realized with the given resident warps: memory latency needs more warps in
// flight to hide than the issue pipelines do.
func (s SM) MemUtil(warpsPerSM float64) float64 {
	return rampUtil(warpsPerSM, float64(s.WarpsForMemPeak))
}

func rampUtil(have, need float64) float64 {
	if have <= 0 {
		return 0
	}
	if need <= 0 || have >= need {
		return 1
	}
	return have / need
}
