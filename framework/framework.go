// Package framework is the public face of the Slate runtime: the daemon
// (server), the client library, the kernel transformation, and the source
// injection pipeline. A typical embedded use:
//
//	srv, dial := framework.NewLocalDaemon(8)
//	cli, _ := framework.Connect(srv, dial, "myproc")
//	buf, _ := cli.Malloc(1 << 20)
//	cli.Launch(mykernel, framework.DefaultTaskSize)
//	cli.Synchronize()
//
// For separate processes, run cmd/slated and dial its Unix socket.
package framework

import (
	"context"
	"net"
	"time"

	"slate/internal/client"
	"slate/internal/daemon"
	"slate/internal/fault"
	"slate/internal/inject"
	"slate/internal/ipc"
	"slate/internal/kern"
	"slate/internal/nvrtc"
	"slate/internal/policy"
	"slate/internal/transform"
)

// Re-exported runtime types.
type (
	// Daemon is the Slate server: sessions, context funneling, the
	// workload-aware executor, and the injection/compilation pipeline.
	Daemon = daemon.Server
	// Client is one application process's connection to the daemon.
	Client = client.Client
	// Buffer is a device allocation (zero-copy for in-process clients).
	Buffer = client.Buffer
	// Kernel is an executable kernel descriptor.
	Kernel = kern.Spec
	// Dim3 mirrors CUDA launch geometry.
	Dim3 = kern.Dim3
	// Transformed is a flattened Slate grid.
	Transformed = transform.Transformed
	// Queue is the device task queue with the retreat signal.
	Queue = transform.Queue
	// RunResult summarizes one worker-set execution.
	RunResult = transform.RunResult
	// Class is a workload class (L_C .. H_M).
	Class = policy.Class
	// InjectOptions configures source transformation.
	InjectOptions = inject.Options
	// Compiler is the runtime compiler with its compile cache.
	Compiler = nvrtc.Compiler
	// Batch accumulates launches for one amortized OpLaunchBatch submit;
	// build with Client.NewBatch.
	Batch = client.Batch
	// BatchAck is one batched item's verdict, in submission order.
	BatchAck = ipc.BatchAck
	// ClientOption configures a client connection (timeouts, sharing).
	ClientOption = client.Option
	// RetryConfig shapes DialRetry's exponential backoff.
	RetryConfig = client.RetryConfig
	// BackoffConfig shapes WithBackpressureRetry's backoff and circuit
	// breaker.
	BackoffConfig = client.BackoffConfig
	// Durability configures the daemon's crash-safe state layer (journal +
	// checkpoint directory); see Daemon.EnableDurability.
	Durability = daemon.Durability
	// RecoveryStats summarizes what a durable daemon recovered at startup.
	RecoveryStats = daemon.RecoveryStats
	// AdoptStats summarizes a Daemon.AdoptState call — sessions re-homed
	// into this daemon from a dead or drained peer's state directory.
	AdoptStats = daemon.AdoptStats
	// FaultConfig sets seeded fault-injection probabilities.
	FaultConfig = fault.Config
	// FaultInjector deterministically perturbs the transport, allocator,
	// and compiler for chaos testing.
	FaultInjector = fault.Injector
)

// Typed sentinel errors every failed client call wraps; branch with
// errors.Is.
var (
	// ErrTimeout: a per-op deadline expired (see WithTimeout).
	ErrTimeout = client.ErrTimeout
	// ErrDaemonDown: the daemon is unreachable or the transport failed.
	ErrDaemonDown = client.ErrDaemonDown
	// ErrDeviceOOM: device memory allocation failed.
	ErrDeviceOOM = client.ErrDeviceOOM
	// ErrKernelPanic: a kernel body panicked and poisoned its session.
	ErrKernelPanic = client.ErrKernelPanic
	// ErrKernelTimeout: a launch was abandoned at the containment deadline
	// and poisoned its session.
	ErrKernelTimeout = client.ErrKernelTimeout
	// ErrBackpressure: the session's pending-launch queue is full.
	ErrBackpressure = client.ErrBackpressure
	// ErrQuota: the session's device-memory quota is exceeded.
	ErrQuota = client.ErrQuota
	// ErrDraining: the daemon is shutting down and admits no new work.
	ErrDraining = client.ErrDraining
	// ErrCircuitOpen: the client's breaker tripped after repeated
	// rejections; launches fail fast without a round trip.
	ErrCircuitOpen = client.ErrCircuitOpen
	// ErrDuplicateOp: a replayed launch was already accepted, but its
	// outcome aged out of the daemon's dedup window (it ran exactly once).
	ErrDuplicateOp = client.ErrDuplicateOp
	// ErrSessionLost: the daemon restarted without durable state for this
	// session; the run continues degraded in a fresh session.
	ErrSessionLost = client.ErrSessionLost
	// ErrExpired: a launch's propagated deadline passed before it executed;
	// the daemon shed it (at admission or at the queue head) without
	// running it.
	ErrExpired = client.ErrExpired
)

// WithTimeout bounds every command round trip; expired calls fail with
// ErrTimeout instead of blocking forever.
func WithTimeout(d time.Duration) ClientOption { return client.WithTimeout(d) }

// WithLaunchDeadline stamps every launch with an absolute execution
// deadline (now + d, re-stamped per retry attempt) that rides the wire to
// the daemon: work that cannot start in time is shed with ErrExpired at
// admission or at the queue head instead of executing uselessly late.
func WithLaunchDeadline(d time.Duration) ClientOption { return client.WithLaunchDeadline(d) }

// WithBackpressureRetry retries backpressured launches with capped jittered
// backoff, failing fast with ErrCircuitOpen once the breaker trips.
func WithBackpressureRetry(bc BackoffConfig) ClientOption {
	return client.WithBackpressureRetry(bc)
}

// DialRetry connects over an arbitrary transport with exponential backoff
// plus jitter, for clients that may start before the daemon (or outlive a
// daemon restart).
func DialRetry(dial func() (net.Conn, error), proc string, rc RetryConfig, opts ...ClientOption) (*Client, error) {
	return client.DialRetry(dial, proc, rc, opts...)
}

// DialRetryContext is DialRetry honoring ctx: cancellation aborts the
// backoff between attempts with an error wrapping ctx.Err().
func DialRetryContext(ctx context.Context, dial func() (net.Conn, error), proc string, rc RetryConfig, opts ...ClientOption) (*Client, error) {
	return client.DialRetryContext(ctx, dial, proc, rc, opts...)
}

// WithContext attaches a context whose cancellation aborts waits inside
// the client's retry loops (backpressure backoff, Resume redials).
func WithContext(ctx context.Context) ClientOption { return client.WithContext(ctx) }

// NewFaultInjector builds a seeded deterministic fault injector.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return fault.New(cfg) }

// DefaultTaskSize is the paper's SLATE_ITERS default of 10 user blocks per
// task.
const DefaultTaskSize = transform.DefaultTaskSize

// NewDaemon builds a daemon whose executor owns the given worker budget.
func NewDaemon(budget int) *Daemon { return daemon.NewServer(budget) }

// NewLocalDaemon builds an in-process daemon and a dial function producing
// connected transports.
func NewLocalDaemon(budget int) (*Daemon, func() net.Conn) { return daemon.NewLocal(budget) }

// Connect attaches a new in-process client to a local daemon.
func Connect(srv *Daemon, dial func() net.Conn, proc string, opts ...ClientOption) (*Client, error) {
	return client.Local(srv, dial, proc, opts...)
}

// Dial attaches a client over an arbitrary transport (e.g. a Unix socket to
// cmd/slated). Remote clients move data through transfer commands and use
// LaunchSource rather than executable specs.
func Dial(conn net.Conn, proc string, opts ...ClientOption) (*Client, error) {
	return client.New(conn, proc, opts...)
}

// Transform flattens a kernel grid for Slate scheduling.
func Transform(grid Dim3, taskSize int) (*Transformed, error) {
	return transform.Transform(grid, taskSize)
}

// NewQueue creates the task queue for a transformed grid.
func NewQueue(t *Transformed) *Queue { return transform.NewQueue(t) }

// RunParallel executes fn for every user block with persistent workers
// pulling from q.
func RunParallel(t *Transformed, q *Queue, workers int, fn func(glob int, id Dim3)) RunResult {
	return transform.RunParallel(t, q, workers, fn)
}

// RunToCompletion repeatedly relaunches worker sets until the queue drains
// (the dispatch-kernel loop).
func RunToCompletion(t *Transformed, q *Queue, workers int, resize func(launch int) int, fn func(glob int, id Dim3)) RunResult {
	return transform.RunToCompletion(t, q, workers, resize, fn)
}

// InjectSource rewrites every __global__ kernel in CUDA source into its
// Slate form (Listings 1-3).
func InjectSource(src string, opt InjectOptions) (string, error) {
	return inject.Transform(src, opt)
}

// NewCompiler builds a runtime compiler with an empty cache.
func NewCompiler() *Compiler { return nvrtc.New() }
