package framework_test

import (
	"fmt"
	"strings"

	"slate/framework"
	"slate/workloads"
)

// The canonical embedded use: start a daemon, connect a session, run a real
// workload, verify.
func Example() {
	srv, dial := framework.NewLocalDaemon(4)
	cli, err := framework.Connect(srv, dial, "example")
	if err != nil {
		panic(err)
	}
	defer cli.Close()

	tr := workloads.NewTranspose(256)
	if err := cli.Launch(tr.Kernel(), framework.DefaultTaskSize); err != nil {
		panic(err)
	}
	if err := cli.Synchronize(); err != nil {
		panic(err)
	}
	fmt.Println("transpose verified:", tr.Verify())
	// Output: transpose verified: true
}

// Transform CUDA source the way the daemon's injector does (Listings 1-3).
func ExampleInjectSource() {
	src := `__global__ void scale(float *x, int n) {
	    int i = blockIdx.x * blockDim.x + threadIdx.x;
	    if (i < n) x[i] *= 2.0f;
	}`
	out, err := framework.InjectSource(src, framework.InjectOptions{TaskSize: 10})
	if err != nil {
		panic(err)
	}
	fmt.Println("has worker kernel:", strings.Contains(out, `extern "C" __global__ void slate_scale(`))
	fmt.Println("builtins replaced:", strings.Contains(out, "slateBlockIdx"))
	// Output:
	// has worker kernel: true
	// builtins replaced: true
}

// Use the grid transformation directly as a parallel work-queue scheduler.
func ExampleRunParallel() {
	tr, err := framework.Transform(framework.Dim3{X: 32, Y: 32, Z: 1}, 10)
	if err != nil {
		panic(err)
	}
	q := framework.NewQueue(tr)
	sums := make([]int, 8)
	res := framework.RunParallel(tr, q, 1, func(glob int, id framework.Dim3) {
		sums[0] += id.X + id.Y // single worker: no synchronization needed
	})
	fmt.Printf("executed %d blocks, %d queue atomics\n", res.BlocksExecuted, res.Atomics)
	// Output: executed 1024 blocks, 104 queue atomics
}
