package framework

import (
	"strings"
	"sync/atomic"
	"testing"

	"slate/internal/kern"
	"slate/workloads"
)

func TestLocalDaemonEndToEnd(t *testing.T) {
	srv, dial := NewLocalDaemon(4)
	cli, err := Connect(srv, dial, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	buf, err := cli.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Data == nil {
		t.Fatal("in-process buffer should be zero-copy")
	}
	bs := workloads.NewBlackScholes(4096)
	if err := cli.Launch(bs.Kernel(), DefaultTaskSize); err != nil {
		t.Fatal(err)
	}
	if err := cli.Synchronize(); err != nil {
		t.Fatal(err)
	}
	c, p := bs.PriceOne(100)
	if bs.Call[100] != c || bs.Put[100] != p {
		t.Fatal("kernel result wrong through the framework facade")
	}
}

func TestTransformAndQueueFacade(t *testing.T) {
	tr, err := Transform(kern.D2(16, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(tr)
	var count atomic.Int64
	res := RunParallel(tr, q, 4, func(int, Dim3) { count.Add(1) })
	if res.BlocksExecuted != 256 || count.Load() != 256 {
		t.Fatalf("executed %d blocks", res.BlocksExecuted)
	}
}

func TestRunToCompletionFacade(t *testing.T) {
	tr, _ := Transform(kern.D1(1000), 5)
	q := NewQueue(tr)
	var count atomic.Int64
	var retreated atomic.Bool
	res := RunToCompletion(tr, q, 2, func(launch int) int { return 2 + launch },
		func(glob int, _ Dim3) {
			count.Add(1)
			if glob == 500 && !retreated.Swap(true) {
				q.Retreat()
			}
		})
	if res.BlocksExecuted != 1000 || count.Load() != 1000 {
		t.Fatalf("executed %d blocks across relaunches", count.Load())
	}
}

func TestInjectAndCompileFacade(t *testing.T) {
	src := `__global__ void k(float *x, int n) {
		int i = blockIdx.x * blockDim.x + threadIdx.x;
		if (i < n) x[i] *= 2.0f;
	}`
	out, err := InjectSource(src, InjectOptions{TaskSize: 10, EmitDispatcher: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "slate_k") {
		t.Fatal("injection produced no slate kernel")
	}
	img, err := NewCompiler().Compile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !img.HasEntry("slate_k") || !img.HasEntry("slate_kDispatcher") {
		t.Fatalf("entries = %v", img.Entries)
	}
}

func TestDialRemoteStyle(t *testing.T) {
	// A client without shared tables behaves like a remote process:
	// transfers copy through the command channel and Launch is rejected.
	srv, dialFn := NewLocalDaemon(2)
	_ = srv
	cli, err := Dial(dialFn(), "remote")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	buf, err := cli.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Data != nil {
		t.Fatal("remote buffer should not be zero-copy")
	}
	src := []byte("hello, device!")
	if err := cli.MemcpyH2D(buf, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := cli.MemcpyD2H(dst, buf); err != nil {
		t.Fatal(err)
	}
	if string(dst) != string(src) {
		t.Fatalf("remote round trip = %q", dst)
	}
	spec := workloads.NewBlackScholes(128).Kernel()
	if err := cli.Launch(spec, DefaultTaskSize); err == nil {
		t.Fatal("executable launch accepted without shared spec table")
	}
	// The source pipeline works remotely.
	entries, err := cli.LaunchSource(`__global__ void k(int n) { if (n) return; }`,
		"k", kern.D1(4), kern.D1(32), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no entries compiled")
	}
}

// Remote source launches execute end to end: after Synchronize, the daemon
// has profiled and run the synthesized kernel through its scheduler.
func TestLaunchSourceExecutesRemotely(t *testing.T) {
	srv, dialFn := NewLocalDaemon(2)
	cli, err := Dial(dialFn(), "remote")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	src := `__global__ void wave(float *x, int n) {
		int i = blockIdx.x * blockDim.x + threadIdx.x;
		if (i < n) x[i] += 1.0f;
	}`
	if _, err := cli.LaunchSource(src, "wave", kern.D1(64), kern.D1(128), 10); err != nil {
		t.Fatal(err)
	}
	if err := cli.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.Exec.Profile("src:wave"); !ok {
		t.Fatal("source kernel never reached the executor")
	}
}
