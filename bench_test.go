// Benchmarks regenerating each table and figure of the paper's evaluation.
// Custom metrics attach the reproduced headline numbers to the benchmark
// output (gains are fractions: 0.11 = 11%).
//
//	go test -bench=. -benchmem
package slate_test

import (
	"sync"
	"testing"

	"slate/gpu"
	"slate/harness"
	"slate/workloads"
)

// benchHarness is shared across benchmarks: the trace-model cache dominates
// first-use cost.
var (
	benchOnce sync.Once
	benchH    *harness.Harness
)

func h() *harness.Harness {
	benchOnce.Do(func() {
		benchH = harness.New(harness.Config{LoopSeconds: 1.0})
	})
	return benchH
}

// BenchmarkFig1StreamSaturation regenerates Fig. 1: stream bandwidth vs SM
// count, saturating at the 9-SM knee.
func BenchmarkFig1StreamSaturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.KneeSMs), "knee-SMs")
		b.ReportMetric(r.Points[len(r.Points)-1].BandwidthGBs, "peak-GB/s")
	}
}

// BenchmarkTableIIProfiles regenerates Table II: the five workload
// profiles.
func BenchmarkTableIIProfiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().TableII()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Code == "MM" {
				b.ReportMetric(row.GFLOPS, "MM-GFLOP/s")
			}
		}
	}
}

// BenchmarkTableIIIGaussian regenerates Table III: GS under CUDA vs Slate
// (paper: +38% access bandwidth, +28% time).
func BenchmarkTableIIIGaussian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().TableIII()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Slate.AccessBW()/r.CUDA.AccessBW()-1, "bw-gain")
		b.ReportMetric(r.CUDA.Duration().Seconds()/r.Slate.Duration().Seconds()-1, "time-gain")
	}
}

// BenchmarkTableIVBSRG regenerates Table IV: the BS-RG pair under MPS vs
// Slate (paper: +30.55% throughput, +71% IPC).
func BenchmarkTableIVBSRG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().TableIV()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ThroughputGain, "throughput-gain")
		b.ReportMetric(r.IPC[1]/r.IPC[0]-1, "ipc-gain")
	}
}

// BenchmarkTableVOverheads regenerates Table V's measured overhead
// inventory (built on a full Fig. 6 run).
func BenchmarkTableVOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := h().TableV(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5TaskSize regenerates Fig. 5: the task-size sweep (paper: GS
// halves at task=10; BS prefers task=1).
func BenchmarkFig5TaskSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().Fig5()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Code == "GS" {
				b.ReportMetric(row.Seconds[0]/row.Seconds[3], "GS-task1/task10")
			}
		}
	}
}

// BenchmarkFig6SoloBreakdown regenerates Fig. 6: solo application times
// under the three schedulers with overhead breakdown (paper: GS -28%,
// comm ≈4%, inject ≈1.5%).
func BenchmarkFig6SoloBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CommFraction(), "comm-frac")
		b.ReportMetric(r.InjectFraction(), "inject-frac")
	}
}

// BenchmarkFig7Pairings regenerates Fig. 7: all 15 pairings under CUDA,
// MPS, and Slate (paper: Slate +11% mean over MPS, +35% best).
func BenchmarkFig7Pairings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SlateVsMPS, "vs-MPS-mean")
		b.ReportMetric(r.BestGain, "vs-MPS-best")
		b.ReportMetric(r.SlateVsCUDA, "vs-CUDA-mean")
	}
}

// fig7Cold runs the full Fig. 7 sweep on a fresh harness each iteration, so
// the benchmark measures the cold-cache cost the CLI user pays. Comparing
// the Serial and Parallel variants gives the worker-pool speedup on this
// machine (bounded above by GOMAXPROCS).
func fig7Cold(b *testing.B, parallel int) {
	for i := 0; i < b.N; i++ {
		fresh := harness.New(harness.Config{LoopSeconds: 1.0, Parallel: parallel})
		r, err := fresh.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SlateVsMPS, "vs-MPS-mean")
	}
}

// BenchmarkFig7SweepColdSerial is the serial baseline for the parallel
// harness: every cell runs in submission order on one goroutine.
func BenchmarkFig7SweepColdSerial(b *testing.B) { fig7Cold(b, 1) }

// BenchmarkFig7SweepColdParallel8 runs the same sweep on an 8-wide worker
// pool; output is byte-identical (see harness/parallel_test.go), only the
// wall-clock changes.
func BenchmarkFig7SweepColdParallel8(b *testing.B) { fig7Cold(b, 8) }

// BenchmarkAblations regenerates the scheduler design-choice ablation
// (policy, split, grace variants against MPS).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().Ablations()
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range r.Variants {
			if v.Name == "table-i" {
				b.ReportMetric(v.Mean, "table-i-mean-gain")
			}
			if v.Name == "never-corun" {
				b.ReportMetric(v.Mean, "never-corun-mean-gain")
			}
		}
	}
}

// BenchmarkSimulatorSoloLaunch measures the simulator's raw cost for one
// solo kernel execution (engine event processing, not modeled GPU time).
func BenchmarkSimulatorSoloLaunch(b *testing.B) {
	spec := workloads.BS()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gpu.NewSimulator(nil).RunSolo(spec, gpu.HardwareSched, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStaticMergeComparator regenerates the related-work comparison
// (serial vs compile-time merge vs Slate).
func BenchmarkStaticMergeComparator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().StaticMerge()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Pair == "GS-RG" {
				b.ReportMetric(row.SerialSec/row.SlateSec-1, "GS-RG-slate-gain")
				b.ReportMetric(row.SerialSec/row.MergedSec-1, "GS-RG-merge-gain")
			}
		}
	}
}

// BenchmarkTriples regenerates the 3-way spatial-sharing extension.
func BenchmarkTriples(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().Triples()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SlateVsMPS, "vs-MPS-mean")
	}
}

// BenchmarkCloudTrace regenerates the multi-tenant arrival-trace extension.
func BenchmarkCloudTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().CloudTrace(harness.CloudTraceConfig{Jobs: 8, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ANTT[2]/r.ANTT[1], "ANTT-slate/mps")
		b.ReportMetric(r.STP[2], "STP-slate")
	}
}

// BenchmarkExtendedPairs regenerates the extended-workload pairings.
func BenchmarkExtendedPairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := h().ExtendedPairs()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Pair == "HS-RG" {
				b.ReportMetric(row.Norm[1]/row.Norm[2]-1, "HS-RG-gain")
			}
		}
	}
}
