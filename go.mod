module slate

go 1.22
