package slate_test

import (
	"os/exec"
	"strings"
	"testing"
)

// Every example must build and run cleanly — examples are documentation,
// and documentation that stops compiling is worse than none.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take ~1 minute combined")
	}
	cases := []struct {
		dir  string
		want string // substring the output must contain
	}{
		{"./examples/quickstart", "OK"},
		{"./examples/pairing", "Slate vs MPS"},
		{"./examples/resizing", "progress carried over"},
		{"./examples/injection", "cacheHits=1"},
		{"./examples/multiprocess", "verify: OK"},
		{"./examples/cloudtrace", "ANTT"},
		{"./examples/customdevice", "saturates at 9 SMs"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Fatalf("%s output missing %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
