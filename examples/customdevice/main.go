// Customdevice: define your own GPU model and watch the mechanisms move —
// the stream-saturation knee follows the memory system, and the corun
// benefit shrinks on a device whose bus has no headroom.
package main

import (
	"fmt"
	"log"

	"slate/gpu"
	"slate/workloads"
)

func main() {
	// A hypothetical mid-range part: 20 SMs, narrow bus that 5 SMs saturate.
	custom := gpu.TitanXp()
	custom.Name = "Hypothetical mid-range (20 SM, 240 GB/s)"
	custom.NumSMs = 20
	custom.DRAM.PeakBandwidth = 240e9
	custom.DRAM.KneeSMs = 5
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}

	for _, dev := range []*gpu.Device{gpu.TitanXp(), gpu.TeslaV100(), custom} {
		fmt.Printf("%s\n", dev.Name)

		// Where does a streaming kernel stop scaling?
		stream := workloads.Stream()
		var prev float64
		knee := dev.NumSMs
		for sms := 1; sms <= dev.NumSMs; sms++ {
			sim := gpu.NewSimulator(dev)
			h, err := sim.Launch(stream, gpu.LaunchOpts{
				Mode: gpu.SlateSched, TaskSize: 10, SMLow: 0, SMHigh: sms - 1,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := sim.Run(); err != nil {
				log.Fatal(err)
			}
			bw := h.Metrics().DRAMBW()
			if prev > 0 && bw < prev*1.005 {
				knee = sms - 1
				break
			}
			prev = bw
		}
		fmt.Printf("  stream saturates at %d SMs (%.0f GB/s)\n", knee, prev)

		// How much compute is left over once the bus is saturated?
		spare := float64(dev.NumSMs-knee) / float64(dev.NumSMs)
		fmt.Printf("  %.0f%% of the device is free compute for a corun partner\n\n", spare*100)
	}
}
