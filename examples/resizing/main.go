// Resizing: dynamic kernel resizing on the simulator (§III-C). A Gaussian
// elimination kernel starts on the whole device; a QuasiRandomGenerator
// arrives and the running kernel shrinks to share; when the newcomer
// completes, the survivor instantly grows back — all with the queue cursor
// (slateIdx) carrying progress across worker relaunches.
package main

import (
	"fmt"
	"log"

	"slate/gpu"
	"slate/workloads"
)

func main() {
	sim := gpu.NewSimulator(nil)
	gs := workloads.GS()
	rg := workloads.RG()

	// Launch GS solo on the full device.
	hGS, err := sim.Launch(gs, gpu.LaunchOpts{
		Mode: gpu.SlateSched, TaskSize: 10, SMLow: 0, SMHigh: 29,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t=%-12v GS launched on SMs [0,29]\n", sim.Now())

	// 10 ms in, RG arrives: shrink GS to [0,21] and corun RG on [22,29].
	sim.Clock.After(10_000_000, func(now gpu.Time) {
		sim.Engine.Sync()
		fmt.Printf("t=%-12v RG arrives; GS progress %.0f/%d blocks\n",
			now, hGS.Progress(), gs.NumBlocks())
		if err := sim.Resize(hGS, 0, 21); err != nil {
			log.Fatal(err)
		}
		hRG, err := sim.Launch(rg, gpu.LaunchOpts{
			Mode: gpu.SlateSched, TaskSize: 10, SMLow: 22, SMHigh: 29,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%-12v GS shrunk to [0,21], RG corunning on [22,29]\n", now)
		sim.OnComplete(hRG, func(at gpu.Time) {
			sim.Engine.Sync()
			before := hGS.Progress()
			if err := sim.Resize(hGS, 0, 29); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("t=%-12v RG done (%.3fms); GS grows back to [0,29] at %.0f blocks — progress carried over\n",
				at, hRG.Metrics().Duration().Millis(), before)
		})
	})

	if err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	m := hGS.Metrics()
	fmt.Printf("t=%-12v GS done: %.3fms, %.1f GB/s access, %d resizes\n",
		sim.Now(), m.Duration().Millis(), m.AccessBW(), m.Resizes)

	// Reference: GS solo without the corun interlude.
	solo, err := gpu.NewSimulator(nil).RunSolo(workloads.GS(), gpu.SlateSched, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGS solo reference: %.3fms — the corun cost GS %.3fms while RG got a free ride\n",
		solo.Duration().Millis(), (m.Duration() - solo.Duration()).Millis())
}
