// Injection: the paper's code-injection pipeline (§IV-B, Listings 1-3) on
// a real CUDA kernel. The user's saxpy is scanned, its grid flattened, the
// built-in blockIdx/gridDim replaced, the SM-range guard and task-queue
// loop wrapped around it, and the result pushed through the runtime
// compiler — twice, to show the compile cache.
package main

import (
	"fmt"
	"log"

	"slate/framework"
)

const userSource = `// user application code
#include <cuda_runtime.h>

__global__ void saxpy(const float a, const float *x, float *y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) return;           // boundary guard keeps its meaning
    y[i] = a * x[i] + y[i];
}

__global__ void stencil2d(float *out, const float *in, int w, int h) {
    int cx = blockIdx.x * 16 + threadIdx.x;
    int cy = blockIdx.y * 16 + threadIdx.y;
    if (cx > 0 && cy > 0 && cx < w-1 && cy < h-1 && blockIdx.y < gridDim.y) {
        out[cy*w + cx] = 0.25f * (in[cy*w+cx-1] + in[cy*w+cx+1] +
                                  in[(cy-1)*w+cx] + in[(cy+1)*w+cx]);
    }
}
`

func main() {
	out, err := framework.InjectSource(userSource, framework.InjectOptions{
		TaskSize:       10,
		EmitDispatcher: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== transformed translation unit ===")
	fmt.Println(out)

	compiler := framework.NewCompiler()
	img, err := compiler.Compile(out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== runtime compilation ===")
	fmt.Printf("entry points: %v\n", img.Entries)

	// A second launch of the same kernel hits the compile cache — the
	// one-time cost behind Fig. 6's 1.5% injection bar.
	if _, err := compiler.Compile(out); err != nil {
		log.Fatal(err)
	}
	compiles, hits := compiler.Stats()
	fmt.Printf("compiles=%d cacheHits=%d (second launch served from cache)\n", compiles, hits)
}
