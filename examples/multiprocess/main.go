// Multiprocess: three application "processes" share one Slate daemon —
// context funneling (§IV-A). Each client session loops a different real
// workload (SGEMM, transpose, Sobol quasirandom); the daemon profiles each
// kernel on first sight, coruns complementary ones on split worker pools,
// and every result is verified against its reference.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"slate/framework"
	"slate/workloads"
)

func main() {
	srv, dial := framework.NewLocalDaemon(8)

	var wg sync.WaitGroup
	type report struct {
		name   string
		reps   int
		dur    time.Duration
		verify func() bool
	}
	reports := make([]report, 3)

	runClient := func(idx int, name string, reps int, kernel *framework.Kernel, verify func() bool) {
		defer wg.Done()
		cli, err := framework.Connect(srv, dial, name)
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()
		start := time.Now()
		for r := 0; r < reps; r++ {
			if err := cli.Launch(kernel, framework.DefaultTaskSize); err != nil {
				log.Fatal(err)
			}
			if err := cli.Synchronize(); err != nil {
				log.Fatal(err)
			}
		}
		reports[idx] = report{name: name, reps: reps, dur: time.Since(start), verify: verify}
	}

	mm := workloads.NewSGEMM(256)
	tr := workloads.NewTranspose(512)
	qr := workloads.NewQuasiRandom(1<<16, 3)

	wg.Add(3)
	go runClient(0, "sgemm", 4, mm.Kernel(), func() bool {
		for _, ij := range [][2]int{{0, 0}, {100, 200}, {255, 255}} {
			want := mm.ReferenceCell(ij[0], ij[1])
			got := mm.C[ij[0]*mm.N+ij[1]]
			if d := got - want; d > 1e-3 || d < -1e-3 {
				return false
			}
		}
		return true
	})
	go runClient(1, "transpose", 6, tr.Kernel(), tr.Verify)
	go runClient(2, "quasirandom", 6, qr.Kernel(), func() bool {
		return qr.Out[1] == 0.5 && qr.Out[2] == 0.25 && qr.Out[3] == 0.75
	})
	wg.Wait()

	fmt.Println("three processes funneled through one Slate daemon:")
	for _, r := range reports {
		status := "OK"
		if !r.verify() {
			status = "FAILED"
		}
		fmt.Printf("  %-12s %d reps in %8.1fms  verify: %s\n",
			r.name, r.reps, float64(r.dur.Microseconds())/1e3, status)
		if status != "OK" {
			log.Fatal("verification failed")
		}
	}

	fmt.Println("\ndaemon scheduling decisions:")
	for _, d := range srv.Exec.Decisions {
		fmt.Printf("  %s\n", d)
	}
}
