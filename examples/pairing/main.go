// Pairing: the paper's headline experiment on one pair — run BlackScholes
// and the QuasiRandomGenerator concurrently under vanilla CUDA, MPS, and
// Slate on the simulated Titan Xp, and watch the workload-aware corun win
// (Table IV / Fig. 7's BS-RG bar, paper: Slate +30.55% over MPS).
package main

import (
	"fmt"
	"log"

	"slate/baselines"
	"slate/gpu"
	"slate/workloads"
)

func main() {
	const loopSec = 2.0

	bs, _ := workloads.ByCode("BS")
	rg, _ := workloads.ByCode("RG")

	// Rep counts per the paper's methodology: loop each kernel to a fixed
	// solo duration.
	jobs := make([]baselines.Job, 0, 2)
	for _, app := range []*workloads.App{bs, rg} {
		m, err := gpu.NewSimulator(nil).RunSolo(app.Kernel, gpu.HardwareSched, 1)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, baselines.Job{
			App:  app,
			Reps: baselines.Reps30s(m.Duration().Seconds(), loopSec),
		})
	}

	type row struct {
		name string
		mean float64
	}
	var rows []row
	for _, b := range []struct {
		name string
		mk   func(*gpu.Device) *baselines.Runner
	}{
		{"CUDA", baselines.NewCUDA},
		{"MPS", baselines.NewMPS},
		{"Slate", baselines.NewSlate},
	} {
		results, err := b.mk(nil).Run(jobs)
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		fmt.Printf("%-6s", b.name)
		for _, r := range results {
			fmt.Printf("  %s=%.3fs", r.Code, r.AppSec())
			mean += r.AppSec()
		}
		mean /= float64(len(results))
		fmt.Printf("  mean=%.3fs\n", mean)
		rows = append(rows, row{b.name, mean})
	}

	cuda, mps, slate := rows[0].mean, rows[1].mean, rows[2].mean
	fmt.Printf("\nSlate vs MPS:  %+.1f%%  (paper: +30.55%% for BS-RG)\n", (mps/slate-1)*100)
	fmt.Printf("Slate vs CUDA: %+.1f%%\n", (cuda/slate-1)*100)
}
