// Quickstart: price 100k Black-Scholes options through the Slate runtime —
// an in-process daemon, one client session, shared buffers, and the
// persistent-worker execution of the transformed kernel.
package main

import (
	"fmt"
	"log"

	"slate/framework"
	"slate/workloads"
)

func main() {
	// 1. Start an in-process Slate daemon with an 8-worker budget and
	// connect a client session, as an application process would.
	srv, dial := framework.NewLocalDaemon(8)
	cli, err := framework.Connect(srv, dial, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// 2. Build the real BlackScholes problem. Its Kernel() carries both
	// the performance model (for scheduling) and the executable math.
	const nOptions = 100_000
	bs := workloads.NewBlackScholes(nOptions)

	// 3. Launch through the Slate API and synchronize. The first launch is
	// profiled and classified; the daemon's executor drains the task queue
	// with persistent workers.
	if err := cli.Launch(bs.Kernel(), framework.DefaultTaskSize); err != nil {
		log.Fatal(err)
	}
	if err := cli.Synchronize(); err != nil {
		log.Fatal(err)
	}

	// 4. Verify against the scalar reference.
	var worst float64
	for i := 0; i < nOptions; i += 1000 {
		c, p := bs.PriceOne(i)
		dc := float64(bs.Call[i] - c)
		dp := float64(bs.Put[i] - p)
		if dc < 0 {
			dc = -dc
		}
		if dp < 0 {
			dp = -dp
		}
		if dc > worst {
			worst = dc
		}
		if dp > worst {
			worst = dp
		}
	}
	fmt.Printf("priced %d options through the Slate runtime\n", nOptions)
	fmt.Printf("sample: option 0 call=%.4f put=%.4f\n", bs.Call[0], bs.Put[0])
	fmt.Printf("max deviation from scalar reference: %g (want 0)\n", worst)
	if worst != 0 {
		log.Fatal("verification failed")
	}
	fmt.Println("OK")
}
