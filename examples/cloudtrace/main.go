// Cloudtrace: the multi-tenant GPU-cloud setting — eight applications
// arriving over time on one device — under vanilla CUDA, MPS, and Slate,
// with an SM-occupancy timeline of the Slate run.
package main

import (
	"fmt"
	"log"

	"slate/harness"

	"slate/internal/daemon"
	"slate/internal/engine"
	"slate/internal/run"
	"slate/internal/trace"
	"slate/internal/vtime"

	"slate/gpu"
	"slate/workloads"
)

func main() {
	h := harness.New(harness.Config{LoopSeconds: 1.0})

	fmt.Println("running an 8-job arrival trace under CUDA, MPS, and Slate…")
	r, err := h.CloudTrace(harness.CloudTraceConfig{Jobs: 8, MeanInterArrivalSec: 0.3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(r.Render())

	// Rerun the Slate case directly to extract its scheduling timeline.
	dev := gpu.TitanXp()
	clk := vtime.NewClock()
	sim := daemon.NewSim(dev, clk, engine.NewTraceModel(dev))
	sim.Costs.InjectSeconds /= 30
	sim.Costs.CompileSeconds /= 30

	var jobs []run.Job
	delay := 0.0
	for i, code := range []string{"GS", "RG", "BS", "RG"} {
		app, err := workloads.ByCode(code)
		if err != nil {
			log.Fatal(err)
		}
		app.Kernel.Name = fmt.Sprintf("%s@%d", app.Kernel.Name, i)
		m, err := gpu.NewSimulator(dev).RunSolo(app.Kernel, gpu.HardwareSched, 1)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, run.Job{
			App:           app,
			Reps:          run.Reps30s(m.Duration().Seconds(), 0.5),
			StartDelaySec: delay,
		})
		delay += 0.2
	}
	if _, err := run.NewDriver(clk, sim).Run(jobs); err != nil {
		log.Fatal(err)
	}
	log2 := &trace.Log{}
	log2.AddDecisions(sim.Sched.Decisions())
	fmt.Println("\nSlate SM-occupancy timeline for a 4-job window (█ = whole device):")
	fmt.Print(log2.Gantt(100, dev.NumSMs))
}
